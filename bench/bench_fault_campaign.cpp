// Statistical fault-injection campaign, in the style of the SWIFI/heavy-ion
// experiment counts of Ademaj et al. [7].
//
// For every (fault class x topology/authority) cell, runs N seeded
// campaigns with randomized fault onset and duration and reports the
// fraction of runs in which at least one *healthy* node was expelled by
// clique avoidance (plus mean healthy availability). The deterministic
// matrix (bench_topology_faults) shows the mechanism; this bench shows the
// statistics are not an artifact of one schedule.
//
// Every run inside a cell derives its RNG from (run, fault) alone, so the
// cells are order-independent: the campaign fans out over a ThreadPool and
// still reports figures identical to a sequential pass — which it also
// times, to report the campaign-level speedup. Pass --json=FILE for
// machine-readable results.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "campaign/estimate.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "sim/cluster.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace tta;

constexpr std::uint64_t kRunsPerCell = 60;
constexpr std::uint64_t kHorizon = 700;

struct CellResult {
  std::uint64_t damaged_runs = 0;
  util::Accumulator healthy_active;  ///< healthy nodes active at end
};

CellResult run_cell(sim::Topology topo, guardian::Authority authority,
                    sim::NodeFaultMode fault) {
  CellResult cell;
  for (std::uint64_t run = 0; run < kRunsPerCell; ++run) {
    util::Rng rng(run * 2654435761u + static_cast<std::uint64_t>(fault));
    sim::ClusterConfig cfg;
    cfg.topology = topo;
    cfg.guardian.authority = authority;
    cfg.keep_log = false;
    // Randomized power-on pattern.
    cfg.power_on_steps = {rng.next_below(8), rng.next_below(8),
                          rng.next_below(8), rng.next_below(8)};
    sim::FaultInjector injector;
    std::uint64_t onset = rng.next_below(200);
    injector.add(sim::NodeFaultWindow{1, fault, onset, UINT64_MAX});
    sim::Cluster cluster(cfg, std::move(injector));
    cluster.run(kHorizon);

    if (cluster.healthy_clique_frozen() > 0 ||
        cluster.metrics().masquerade_integrations > 0) {
      ++cell.damaged_runs;
    }
    std::size_t active = 0;
    for (ttpc::NodeId id = 2; id <= 4; ++id) {
      active += cluster.node(id).state().state == ttpc::CtrlState::kActive;
    }
    cell.healthy_active.add(static_cast<double>(active));
  }
  return cell;
}

struct Cell {
  sim::NodeFaultMode fault;
  sim::Topology topo;
  guardian::Authority authority;
};

std::vector<Cell> campaign_cells() {
  const std::pair<sim::Topology, guardian::Authority> configs[] = {
      {sim::Topology::kBus, guardian::Authority::kPassive},
      {sim::Topology::kStar, guardian::Authority::kTimeWindows},
      {sim::Topology::kStar, guardian::Authority::kSmallShifting},
  };
  std::vector<Cell> cells;
  for (sim::NodeFaultMode fault :
       {sim::NodeFaultMode::kBabbling, sim::NodeFaultMode::kMasqueradeColdStart,
        sim::NodeFaultMode::kBadCState, sim::NodeFaultMode::kSosValue,
        sim::NodeFaultMode::kSosTime}) {
    for (const auto& [topo, authority] : configs) {
      cells.push_back({fault, topo, authority});
    }
  }
  return cells;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void print_campaign(bench::JsonWriter& json) {
  std::printf("statistical fault-injection campaign: %llu randomized runs "
              "per cell (random power-on pattern and fault onset; damage = "
              "healthy node expelled or masquerade integration)\n\n",
              static_cast<unsigned long long>(kRunsPerCell));
  const std::vector<Cell> cells = campaign_cells();

  // Sequential reference pass, then the pooled pass into index-addressed
  // slots. Per-run seeding makes the two bit-identical; the reference
  // exists to prove exactly that (and to time the speedup).
  auto t0 = std::chrono::steady_clock::now();
  std::vector<CellResult> sequential(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    sequential[i] = run_cell(cells[i].topo, cells[i].authority,
                             cells[i].fault);
  }
  double seq_seconds = seconds_since(t0);

  util::ThreadPool pool;
  t0 = std::chrono::steady_clock::now();
  std::vector<CellResult> results(cells.size());
  pool.run_tasks(cells.size(), [&](std::size_t i) {
    results[i] = run_cell(cells[i].topo, cells[i].authority, cells[i].fault);
  });
  double par_seconds = seconds_since(t0);

  util::Table t({"fault", "configuration", "damaged runs",
                 "healthy active at end (mean/3)"});
  bool all_match = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = results[i];
    all_match &= cell.damaged_runs == sequential[i].damaged_runs &&
                 cell.healthy_active.mean() ==
                     sequential[i].healthy_active.mean();
    char name[64], damaged[32];
    std::snprintf(name, sizeof name, "%s + %s",
                  sim::to_string(cells[i].topo),
                  guardian::to_string(cells[i].authority));
    std::snprintf(damaged, sizeof damaged, "%llu/%llu",
                  static_cast<unsigned long long>(cell.damaged_runs),
                  static_cast<unsigned long long>(kRunsPerCell));
    t.add_row({sim::to_string(cells[i].fault), name, damaged,
               util::Table::num(cell.healthy_active.mean(), 2)});

    char entry[96];
    std::snprintf(entry, sizeof entry, "%s / %s",
                  sim::to_string(cells[i].fault), name);
    json.begin_entry(entry);
    json.field("damaged_runs", cell.damaged_runs);
    json.field("runs", kRunsPerCell);
    json.field("healthy_active_mean", cell.healthy_active.mean());
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("campaign wall clock: sequential %.2fs, %u-thread pool %.2fs "
              "(%.2fx)%s\n\n",
              seq_seconds, pool.size(), par_seconds,
              seq_seconds / par_seconds,
              all_match ? "; pooled results identical to sequential"
                        : "; ** POOLED RESULTS DIVERGE FROM SEQUENTIAL **");
  json.begin_entry("campaign_timing");
  json.field("sequential_seconds", seq_seconds);
  json.field("parallel_seconds", par_seconds);
  json.field("threads", std::uint64_t{pool.size()});
  json.field("speedup", seq_seconds / par_seconds);
  json.field("matches_sequential", std::uint64_t{all_match});

  std::printf("shape to compare with [7]: SOS faults damage essentially "
              "every bus run and bad C-states hit whenever a node happens "
              "to (re)integrate during the fault; babbling and startup "
              "masquerade show up as lost availability when the random "
              "onset lands in the startup window. The fully authoritative "
              "star (small_shifting) shows zero damage and full "
              "availability across all %llu x 5 runs.\n\n",
              static_cast<unsigned long long>(kRunsPerCell));
}

/// The campaign subsystem's reference workload: dual-channel silence at
/// 0.4 each, so a startup failure needs both channels dark (p ~= 0.16).
/// min_trials == max_trials pins the trial count, making every figure a
/// pure function of the spec.
campaign::CampaignSpec probabilistic_spec(std::uint32_t trials) {
  campaign::CampaignSpec spec;
  spec.criterion = campaign::Criterion::kAllActiveReached;
  spec.steps = 64;
  spec.seed = 20040628;
  spec.min_trials = trials;
  spec.max_trials = trials;
  spec.batch_size = 256;
  spec.epsilon_ppm = 1;  // unreachable: never stop before max_trials
  spec.coupler_faults.push_back(
      {0, guardian::CouplerFault::kSilence, 400'000, 0, UINT64_MAX});
  spec.coupler_faults.push_back(
      {1, guardian::CouplerFault::kSilence, 400'000, 0, UINT64_MAX});
  return spec;
}

void print_probabilistic_campaign(bench::JsonWriter& json) {
  std::printf("probabilistic campaign (src/campaign): dual-channel silence "
              "at p=0.4 each,\ncriterion all_active, Wilson 95%% interval\n\n");

  // Panel 1: interval half-width vs trial count. trial_fails() is a pure
  // function of (spec, index), so one incremental pass scores every
  // checkpoint of the same campaign.
  const campaign::CampaignSpec spec = probabilistic_spec(16'384);
  util::Table ci_table({"trials", "p_hat", "half-width (ppm)"});
  std::uint64_t failures = 0;
  std::uint64_t next_checkpoint = 256;
  for (std::uint64_t i = 0; i < 16'384; ++i) {
    failures += campaign::trial_fails(spec, i) ? 1 : 0;
    if (i + 1 == next_checkpoint) {
      const campaign::Estimate est =
          campaign::wilson_estimate(failures, i + 1);
      ci_table.add_row({std::to_string(i + 1),
                        util::Table::num(est.p_hat, 4),
                        util::Table::num(est.half_width() * 1e6, 0)});
      char entry[48];
      std::snprintf(entry, sizeof entry, "ci_halfwidth/trials=%llu",
                    static_cast<unsigned long long>(i + 1));
      json.begin_entry(entry);
      json.field("trials", i + 1);
      json.field("failures", failures);
      json.field("p_hat", est.p_hat);
      json.field("half_width_ppm", est.half_width() * 1e6);
      next_checkpoint *= 4;
    }
  }
  std::printf("%s\n", ci_table.render().c_str());

  // Panels 2+3: throughput and the sequential-vs-pooled cross-check on the
  // full runner (batching, stopping rule, accounting included).
  auto t0 = std::chrono::steady_clock::now();
  const campaign::CampaignResult seq =
      campaign::run_campaign(spec, nullptr);
  const double seq_seconds = seconds_since(t0);

  util::ThreadPool pool;
  t0 = std::chrono::steady_clock::now();
  const campaign::CampaignResult par =
      campaign::run_campaign(spec, &pool);
  const double par_seconds = seconds_since(t0);

  const bool match =
      seq.estimate.trials == par.estimate.trials &&
      seq.estimate.failures == par.estimate.failures &&
      seq.estimate.p_hat == par.estimate.p_hat;
  const double trials = static_cast<double>(seq.estimate.trials);
  std::printf("runner: %llu trials; sequential %.2fs (%.0f trials/s), "
              "%u-thread pool %.2fs (%.0f trials/s), speedup %.2fx%s\n\n",
              static_cast<unsigned long long>(seq.estimate.trials),
              seq_seconds, trials / seq_seconds, pool.size(), par_seconds,
              trials / par_seconds, seq_seconds / par_seconds,
              match ? "; pooled estimate identical to sequential"
                    : "; ** POOLED ESTIMATE DIVERGES FROM SEQUENTIAL **");
  json.begin_entry("probabilistic_runner");
  json.field("trials", seq.estimate.trials);
  json.field("failures", seq.estimate.failures);
  json.field("p_hat", seq.estimate.p_hat);
  json.field("sequential_seconds", seq_seconds);
  json.field("parallel_seconds", par_seconds);
  json.field("threads", std::uint64_t{pool.size()});
  json.field("speedup", seq_seconds / par_seconds);
  json.field("trials_per_sec_sequential", trials / seq_seconds);
  json.field("trials_per_sec_parallel", trials / par_seconds);
  json.field("matches_sequential", std::uint64_t{match});
}

void BM_OneCampaignCell(benchmark::State& state) {
  for (auto _ : state) {
    CellResult cell =
        run_cell(sim::Topology::kBus, guardian::Authority::kPassive,
                 sim::NodeFaultMode::kSosValue);
    benchmark::DoNotOptimize(cell.damaged_runs);
  }
}
BENCHMARK(BM_OneCampaignCell)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = tta::bench::take_json_flag(&argc, argv);
  tta::bench::JsonWriter json;
  print_campaign(json);
  print_probabilistic_campaign(json);
  if (!json_path.empty()) json.write(json_path, "bench_fault_campaign");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
