// Experiment E2 — the duplicated-cold-start counterexample (paper
// Section 5.2, first trace).
//
// Configuration exactly as the paper describes: full-shifting couplers with
// the out-of-slot error budget limited to one. The checker's shortest
// counterexample shows a replayed cold-start frame desynchronizing an
// integrating node, which is then expelled by clique avoidance. (BFS finds
// the shortest such trace; the paper's narrated variant — the victim
// integrating *on* the replayed frame — exists deeper in the state space
// and is exercised by the simulator tests.)
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/experiments.h"
#include "mc/monitor.h"
#include "mc/trace_printer.h"

namespace {

void print_paper_shape_trace() {
  // The paper's narrated variant specifically: the victim integrates *on*
  // the replayed cold-start frame (found via the history-augmented model).
  tta::mc::ModelConfig cfg;
  cfg.authority = tta::guardian::Authority::kFullShifting;
  cfg.max_out_of_slot_errors = 1;
  tta::mc::MonitoredModel model(cfg);
  auto res = tta::mc::Checker(model).check(tta::mc::replay_victim_freezes());
  tta::mc::TracePrinter printer(model.inner());
  std::printf("E2b: shortest trace with the paper's exact causal shape — "
              "the frozen node integrated ON the replayed frame (%zu steps, "
              "%llu states):\n\n%s\n",
              res.trace.size(),
              static_cast<unsigned long long>(res.stats.states_explored),
              printer.narrate(tta::mc::strip_monitor(res.trace)).c_str());
}

void print_trace() {
  tta::core::TraceExperiment exp =
      tta::core::run_trace_coldstart_duplication();
  std::printf("E2: full-shifting coupler, <=1 out-of-slot error -> "
              "counterexample (%zu steps, %llu states, %.3fs)\n\n",
              exp.result.trace.size(),
              static_cast<unsigned long long>(
                  exp.result.stats.states_explored),
              exp.result.stats.seconds);
  std::printf("%s\n", exp.narration.c_str());
  std::printf("per-step detail:\n%s\n", exp.table.c_str());
  std::printf("paper: a single replayed cold-start frame makes node B "
              "integrate at the wrong position; B then judges the other\n"
              "nodes' C-state frames faulty and freezes due to a clique "
              "avoidance error.\n\n");
}

void BM_ColdStartTrace(benchmark::State& state) {
  for (auto _ : state) {
    auto exp = tta::core::run_trace_coldstart_duplication();
    benchmark::DoNotOptimize(exp.result.trace.size());
  }
}
BENCHMARK(BM_ColdStartTrace)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_trace();
  print_paper_shape_trace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
