// Experiment E9 — the bus-vs-star fault-propagation matrix.
//
// Reproduces the qualitative findings of Ademaj et al. [7] that motivate
// the paper's central guardians: SOS faults, startup masquerading, bad
// C-states and babbling idiots propagate on the bus topology (and through a
// passive hub), and are contained as the central guardian's authority grows
// — which is precisely the authority the paper then shows must be bounded.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/experiments.h"
#include "util/table.h"

namespace {

using namespace tta;

void print_matrix() {
  std::printf("E9: fault propagation, bus + local guardians vs star at "
              "three authority levels\n(one faulty node; 'healthy frozen' = "
              "healthy nodes expelled by clique avoidance)\n\n");
  auto rows = core::run_topology_fault_matrix();
  std::printf("%s\n", core::render_topology_fault_matrix(rows).c_str());

  std::printf("integration vulnerability (bad C-state sender vs a late "
              "joiner, 8 join offsets):\n\n");
  util::Table t({"topology", "authority", "join attempts", "captured/frozen"});
  for (const auto& r : core::run_integration_vulnerability()) {
    t.add_row({sim::to_string(r.topology), guardian::to_string(r.authority),
               std::to_string(r.total), std::to_string(r.damaged)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper/[7]: the bus cannot stop SOS, startup masquerade, or "
              "bad-C-state capture; the star with signal reshaping and\n"
              "semantic analysis (small_shifting) stops all of them.\n\n");
}

void BM_TopologyMatrix(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = core::run_topology_fault_matrix(/*steps=*/300);
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_TopologyMatrix)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_matrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
