// Async session plumbing overhead: what the streaming front end costs.
//
// The session API adds machinery between a caller and the checker — digest
// canonicalization at submit, the cross-session job queue, worker handoff,
// and the bounded result stream. These benches price that plumbing in
// isolation from checker work: the round-trip latency of one tiny job
// through submit -> worker -> stream -> consume, the throughput of a
// cache-served batch (zero engine time, pure streaming), the cost of a
// hard-rejected submission (the admission-bound fast path), and the sync
// shim against manual session use for the same batch.
//
// The serving panel (printed before the microbenchmarks; --json=FILE for
// machine-readable rows) prices the server architectures end to end over
// real sockets: the event-driven svc::Server — one poll(2) thread for all
// connections — against a minimal thread-per-connection server wrapping
// the same AsyncService, on connection churn (accept/close cost) and on
// concurrent wire round trips.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "svc/async_service.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/wire.h"
#include "util/fail_point.h"
#include "util/socket.h"
#include "util/table.h"

namespace {

using namespace tta;

/// Concludes kInconclusive within a few thousand states: the cheapest job
/// that still exercises the full submit -> worker -> stream path. Never
/// cached (only conclusive results are), so every iteration really runs.
svc::JobSpec tiny_job(std::uint64_t salt) {
  svc::JobSpec spec;
  spec.model.authority = guardian::Authority::kPassive;
  spec.model.protocol.num_nodes = 3;
  spec.model.protocol.num_slots = 3;
  spec.property = svc::Property::kNoIntegratedNodeFreezes;
  spec.engine = svc::EngineChoice::kSerial;
  spec.max_states = 50 + salt;  // distinct digests when salted
  return spec;
}

/// Cheap but conclusive: a 3-node small-shifting safety check that HOLDS,
/// so after one warm run every resubmission is a cache hit.
svc::JobSpec cached_job() {
  svc::JobSpec spec;
  spec.model.authority = guardian::Authority::kSmallShifting;
  spec.model.protocol.num_nodes = 3;
  spec.model.protocol.num_slots = 3;
  spec.property = svc::Property::kNoIntegratedNodeFreezes;
  spec.engine = svc::EngineChoice::kSerial;
  return spec;
}

/// The fail-point cost model's acceptance gate (util/fail_point.h):
/// compiled in but unarmed — the production default — an evaluation is one
/// relaxed atomic load, so the serving stack can keep its injection sites
/// at zero measurable cost. Compare against BM_SubmitConsumeRoundTrip:
/// the per-site nanoseconds vanish inside one microsecond-scale job.
void BM_FailPointUnarmed(benchmark::State& state) {
  for (auto _ : state) {
    util::FailDecision d = util::fail_point("bench.noop");
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_FailPointUnarmed);

/// Worst production-adjacent case: some OTHER site is armed, so every
/// evaluation takes the slow path (registry mutex + map lookup) and
/// misses. This is what a chaos run costs the sites it is not injecting.
void BM_FailPointArmedOtherSite(benchmark::State& state) {
  std::string error;
  util::FailPoints::instance().arm("bench.other=error:prob(0)", &error);
  for (auto _ : state) {
    util::FailDecision d = util::fail_point("bench.noop");
    benchmark::DoNotOptimize(d);
  }
  util::FailPoints::instance().disarm_all();
}
BENCHMARK(BM_FailPointArmedOtherSite);

void BM_SubmitConsumeRoundTrip(benchmark::State& state) {
  svc::ServiceConfig config;
  config.workers = 1;
  svc::AsyncService service(config);
  std::shared_ptr<svc::Session> session = service.open_session();
  for (auto _ : state) {
    const svc::JobHandle h = session->submit(tiny_job(0));
    benchmark::DoNotOptimize(h);
    auto item = session->results().next();
    benchmark::DoNotOptimize(item);
  }
  session->drain();
}
BENCHMARK(BM_SubmitConsumeRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_CacheServedBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  svc::ServiceConfig config;
  config.workers = 2;
  svc::AsyncService service(config);
  std::shared_ptr<svc::Session> session = service.open_session();
  {  // warm the cache with the one real run
    session->submit(cached_job());
    session->results().next();
  }
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) session->submit(cached_job());
    for (int i = 0; i < batch; ++i) {
      auto item = session->results().next();
      benchmark::DoNotOptimize(item);
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
  session->drain();
}
BENCHMARK(BM_CacheServedBatch)->Arg(16)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_SubmitHardReject(benchmark::State& state) {
  svc::ServiceConfig config;
  config.workers = 1;
  config.max_pending = 1;
  svc::AsyncService service(config);
  std::shared_ptr<svc::Session> session = service.open_session();
  // Saturate: one open job (never consumed) plus one buffered rejection
  // hit the 2x max_pending stream bound, so every further submission takes
  // the hard-reject fast path — digest + bound check, no streaming.
  session->submit(tiny_job(1));
  session->submit(tiny_job(2));
  for (auto _ : state) {
    const svc::JobHandle h = session->submit(tiny_job(3));
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_SubmitHardReject)->Unit(benchmark::kMicrosecond);

// ---- serving panel: event loop vs thread-per-connection ----------------

constexpr int kChurnConnections = 256;
constexpr int kClients = 32;
constexpr int kJobsPerClient = 8;

/// The wire form of tiny_job: inconclusive within 60 states, never
/// cached, so every round trip carries a real submit -> worker -> stream.
std::string tiny_request(int client, int index) {
  char id[32];
  std::snprintf(id, sizeof id, "c%d-%d", client, index);
  return svc::decorate_request_line(
      R"({"authority": "passive", "property": "safety", "max_states": 60})",
      0, id);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Open + immediately close `count` connections; returns seconds.
double churn_connections(std::uint16_t port, int count) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < count; ++i) {
    std::string error;
    util::Socket sock = util::Socket::connect_to("127.0.0.1", port, 5'000,
                                                 &error);
    if (!sock.valid()) {
      std::fprintf(stderr, "churn connect failed: %s\n", error.c_str());
      return -1.0;
    }
  }
  return seconds_since(t0);
}

/// One client: write all requests, half-close, read rows until EOF.
/// Returns the number of response rows (jobs answered).
int drive_client(std::uint16_t port, int client, int jobs) {
  std::string error;
  util::Socket sock = util::Socket::connect_to("127.0.0.1", port, 10'000,
                                               &error);
  if (!sock.valid()) return -1;
  util::LineConn conn(std::move(sock));
  for (int i = 0; i < jobs; ++i) {
    if (conn.write_line(tiny_request(client, i), 10'000) !=
        util::LineConn::Io::kOk) {
      return -1;
    }
  }
  conn.shutdown_write();
  int rows = 0;
  std::string line;
  while (conn.read_line(&line, 60'000) == util::LineConn::Io::kOk) ++rows;
  return rows;
}

/// `kClients` concurrent clients x `kJobsPerClient` jobs; returns seconds,
/// or -1 when any client saw a transport failure or a short answer count.
double drive_clients(std::uint16_t port) {
  std::vector<std::thread> clients;
  std::atomic<int> bad{0};
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([port, c, &bad] {
      if (drive_client(port, c, kJobsPerClient) != kJobsPerClient) ++bad;
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = seconds_since(t0);
  return bad.load() == 0 ? seconds : -1.0;
}

/// The architecture svc::Server replaced, reduced to its essentials: one
/// blocking acceptor thread, one thread per connection, each wrapping its
/// own Session over a shared AsyncService. Kept here as the bench
/// baseline so the comparison stays honest about what a thread buys and
/// costs relative to the poll(2) loop.
class ThreadPerConnServer {
 public:
  bool start() {
    std::string error;
    listener_ = util::Socket::listen_on(0, &port_, &error);
    if (!listener_.valid()) {
      std::fprintf(stderr, "baseline listen failed: %s\n", error.c_str());
      return false;
    }
    svc::ServiceConfig config;
    config.workers = 2;
    config.cache_capacity = 0;
    service_ = std::make_unique<svc::AsyncService>(config);
    acceptor_ = std::thread([this] { accept_loop(); });
    return true;
  }

  void stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (acceptor_.joinable()) acceptor_.join();
    for (std::thread& t : handlers_) t.join();
    handlers_.clear();
  }

  std::uint16_t port() const { return port_; }

 private:
  void accept_loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      util::Socket conn = listener_.accept_for(50);
      if (!conn.valid()) continue;
      handlers_.emplace_back(
          [this, sock = std::move(conn)]() mutable {
            serve(std::move(sock));
          });
    }
  }

  void serve(util::Socket sock) {
    util::LineConn conn(std::move(sock));
    std::shared_ptr<svc::Session> session = service_->open_session();
    struct Pending {
      svc::JobSpec spec;
      std::string id;
    };
    std::vector<Pending> pending;
    std::string line;
    bool reading = true;
    while (reading) {
      switch (conn.read_line(&line, 60'000)) {
        case util::LineConn::Io::kOk: {
          svc::WireRequest request;
          std::string error;
          if (!svc::parse_request_line(line, &request, &error)) continue;
          session->submit(request.spec,
                          svc::SubmitOptions{request.priority, 0, 1});
          pending.push_back({request.spec, request.id});
          break;
        }
        default:
          reading = false;
          break;
      }
    }
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      auto item = session->results().next();
      if (!item) break;
      conn.write_line(svc::result_json(pending[i].spec, item->result, 1,
                                       ++seq, 0.0, pending[i].id),
                      10'000);
    }
    session->drain();
  }

  util::Socket listener_;
  std::uint16_t port_ = 0;
  std::unique_ptr<svc::AsyncService> service_;
  std::thread acceptor_;
  std::vector<std::thread> handlers_;
  std::atomic<bool> stop_{false};
};

void print_serving_panel(bench::JsonWriter& json) {
  std::printf("serving panel: event-driven svc::Server (one poll thread) "
              "vs thread-per-connection,\nsame AsyncService behind both "
              "(2 workers, cache off); %d churned connections, %d clients "
              "x %d jobs\n\n",
              kChurnConnections, kClients, kJobsPerClient);

  struct Figures {
    double churn_seconds = -1.0;
    double roundtrip_seconds = -1.0;
  };
  Figures event_loop;
  Figures threaded;

  {
    svc::ServerConfig config;
    config.port = 0;
    config.service.workers = 2;
    config.service.cache_capacity = 0;
    svc::Server server(std::move(config));
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "event-loop server failed to start: %s\n",
                   error.c_str());
      return;
    }
    std::thread runner([&server] { server.run(); });
    event_loop.churn_seconds =
        churn_connections(server.port(), kChurnConnections);
    event_loop.roundtrip_seconds = drive_clients(server.port());
    server.request_stop();
    runner.join();
  }

  {
    ThreadPerConnServer server;
    if (!server.start()) return;
    threaded.churn_seconds =
        churn_connections(server.port(), kChurnConnections);
    threaded.roundtrip_seconds = drive_clients(server.port());
    server.stop();
  }

  const double jobs = static_cast<double>(kClients) * kJobsPerClient;
  util::Table table({"server", "churn (conns/s)", "round trips (jobs/s)",
                     "wall (s)"});
  const struct {
    const char* name;
    const Figures& figures;
  } rows[] = {{"event_loop", event_loop},
              {"thread_per_conn", threaded}};
  for (const auto& row : rows) {
    table.add_row(
        {row.name,
         util::Table::num(kChurnConnections / row.figures.churn_seconds, 0),
         util::Table::num(jobs / row.figures.roundtrip_seconds, 0),
         util::Table::num(row.figures.roundtrip_seconds, 3)});
    json.begin_entry(std::string("serving/") + row.name);
    json.field("churn_connections", std::uint64_t{kChurnConnections});
    json.field("churn_seconds", row.figures.churn_seconds);
    json.field("churn_conns_per_sec",
               kChurnConnections / row.figures.churn_seconds);
    json.field("clients", std::uint64_t{kClients});
    json.field("jobs_per_client", std::uint64_t{kJobsPerClient});
    json.field("roundtrip_seconds", row.figures.roundtrip_seconds);
    json.field("jobs_per_sec", jobs / row.figures.roundtrip_seconds);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("churn prices accept + teardown (the baseline pays a thread "
              "spawn per connection); round trips are checker-bound for "
              "both, so the jobs/s gap stays small — the event loop's win "
              "is holding thousands of idle connections without threads "
              "(the CI soak drives 10k).\n\n");
}

void BM_SyncShimBatch(benchmark::State& state) {
  svc::VerificationService service;
  service.run(cached_job());  // warm
  const std::vector<svc::JobSpec> jobs(16, cached_job());
  for (auto _ : state) {
    auto results = service.run_batch(jobs);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SyncShimBatch)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = tta::bench::take_json_flag(&argc, argv);
  tta::bench::JsonWriter json;
  print_serving_panel(json);
  if (!json_path.empty()) json.write(json_path, "bench_async_service");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
