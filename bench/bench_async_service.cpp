// Async session plumbing overhead: what the streaming front end costs.
//
// The session API adds machinery between a caller and the checker — digest
// canonicalization at submit, the cross-session job queue, worker handoff,
// and the bounded result stream. These benches price that plumbing in
// isolation from checker work: the round-trip latency of one tiny job
// through submit -> worker -> stream -> consume, the throughput of a
// cache-served batch (zero engine time, pure streaming), the cost of a
// hard-rejected submission (the admission-bound fast path), and the sync
// shim against manual session use for the same batch.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "svc/async_service.h"
#include "svc/service.h"
#include "util/fail_point.h"

namespace {

using namespace tta;

/// Concludes kInconclusive within a few thousand states: the cheapest job
/// that still exercises the full submit -> worker -> stream path. Never
/// cached (only conclusive results are), so every iteration really runs.
svc::JobSpec tiny_job(std::uint64_t salt) {
  svc::JobSpec spec;
  spec.model.authority = guardian::Authority::kPassive;
  spec.model.protocol.num_nodes = 3;
  spec.model.protocol.num_slots = 3;
  spec.property = svc::Property::kNoIntegratedNodeFreezes;
  spec.engine = svc::EngineChoice::kSerial;
  spec.max_states = 50 + salt;  // distinct digests when salted
  return spec;
}

/// Cheap but conclusive: a 3-node small-shifting safety check that HOLDS,
/// so after one warm run every resubmission is a cache hit.
svc::JobSpec cached_job() {
  svc::JobSpec spec;
  spec.model.authority = guardian::Authority::kSmallShifting;
  spec.model.protocol.num_nodes = 3;
  spec.model.protocol.num_slots = 3;
  spec.property = svc::Property::kNoIntegratedNodeFreezes;
  spec.engine = svc::EngineChoice::kSerial;
  return spec;
}

/// The fail-point cost model's acceptance gate (util/fail_point.h):
/// compiled in but unarmed — the production default — an evaluation is one
/// relaxed atomic load, so the serving stack can keep its injection sites
/// at zero measurable cost. Compare against BM_SubmitConsumeRoundTrip:
/// the per-site nanoseconds vanish inside one microsecond-scale job.
void BM_FailPointUnarmed(benchmark::State& state) {
  for (auto _ : state) {
    util::FailDecision d = util::fail_point("bench.noop");
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_FailPointUnarmed);

/// Worst production-adjacent case: some OTHER site is armed, so every
/// evaluation takes the slow path (registry mutex + map lookup) and
/// misses. This is what a chaos run costs the sites it is not injecting.
void BM_FailPointArmedOtherSite(benchmark::State& state) {
  std::string error;
  util::FailPoints::instance().arm("bench.other=error:prob(0)", &error);
  for (auto _ : state) {
    util::FailDecision d = util::fail_point("bench.noop");
    benchmark::DoNotOptimize(d);
  }
  util::FailPoints::instance().disarm_all();
}
BENCHMARK(BM_FailPointArmedOtherSite);

void BM_SubmitConsumeRoundTrip(benchmark::State& state) {
  svc::ServiceConfig config;
  config.workers = 1;
  svc::AsyncService service(config);
  std::shared_ptr<svc::Session> session = service.open_session();
  for (auto _ : state) {
    const svc::JobHandle h = session->submit(tiny_job(0));
    benchmark::DoNotOptimize(h);
    auto item = session->results().next();
    benchmark::DoNotOptimize(item);
  }
  session->drain();
}
BENCHMARK(BM_SubmitConsumeRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_CacheServedBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  svc::ServiceConfig config;
  config.workers = 2;
  svc::AsyncService service(config);
  std::shared_ptr<svc::Session> session = service.open_session();
  {  // warm the cache with the one real run
    session->submit(cached_job());
    session->results().next();
  }
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) session->submit(cached_job());
    for (int i = 0; i < batch; ++i) {
      auto item = session->results().next();
      benchmark::DoNotOptimize(item);
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
  session->drain();
}
BENCHMARK(BM_CacheServedBatch)->Arg(16)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_SubmitHardReject(benchmark::State& state) {
  svc::ServiceConfig config;
  config.workers = 1;
  config.max_pending = 1;
  svc::AsyncService service(config);
  std::shared_ptr<svc::Session> session = service.open_session();
  // Saturate: one open job (never consumed) plus one buffered rejection
  // hit the 2x max_pending stream bound, so every further submission takes
  // the hard-reject fast path — digest + bound check, no streaming.
  session->submit(tiny_job(1));
  session->submit(tiny_job(2));
  for (auto _ : state) {
    const svc::JobHandle h = session->submit(tiny_job(3));
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_SubmitHardReject)->Unit(benchmark::kMicrosecond);

void BM_SyncShimBatch(benchmark::State& state) {
  svc::VerificationService service;
  service.run(cached_job());  // warm
  const std::vector<svc::JobSpec> jobs(16, cached_job());
  for (auto _ : state) {
    auto results = service.run_batch(jobs);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SyncShimBatch)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
