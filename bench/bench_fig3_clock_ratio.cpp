// Experiment E5 — Figure 3: "Relationship between frame size range and
// ratio of clock rates" (eq. 10, le = 4).
//
// Prints the curve w_max/w_min = f_max / (f_max - f_min + 1 + le) as one
// series per f_min; the feasible design region lies below each curve. Also
// renders a coarse ASCII plot so the figure's shape is visible in the
// terminal.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "analysis/sweep.h"
#include "util/table.h"

namespace {

using namespace tta;

void print_series() {
  std::printf("E5 / Figure 3: max clock-rate ratio vs frame size range "
              "(le = 4; feasible region below the curve)\n\n");
  analysis::Figure3Config cfg;
  auto series = analysis::figure3(cfg);

  util::Table t({"f_max [bits]", "f_min=8", "f_min=28", "f_min=128"});
  // Align the three series on the union of sampled f_max values.
  for (const auto& p : series[2].points) {
    auto find = [&](const analysis::Figure3Series& s) -> std::string {
      for (const auto& q : s.points) {
        if (q.f_max == p.f_max) {
          return util::Table::num(q.clock_ratio_limit, 3);
        }
      }
      return "-";
    };
    t.add_row({std::to_string(p.f_max), find(series[0]), find(series[1]),
               util::Table::num(p.clock_ratio_limit, 3)});
  }
  std::printf("%s\n", t.render().c_str());

  // ASCII rendering of the f_min = 128 curve (log-x, log-y).
  std::printf("f_min = 128 curve (log-log), '*' = limit, region below is "
              "feasible:\n");
  const auto& pts = series[2].points;
  for (const auto& p : pts) {
    int stars = static_cast<int>(
        std::lround(12.0 * std::log10(p.clock_ratio_limit)));
    std::printf("f_max %5lld | %*s* (%.3f)\n",
                static_cast<long long>(p.f_max), stars < 0 ? 0 : stars, "",
                p.clock_ratio_limit);
  }
  std::printf("\npaper: at f_min = f_max = 128 the ratio is f_max/5 = 25.6, "
              "not f_max — the 1 + le term dominates at high ratios.\n\n");
}

void BM_Figure3Sweep(benchmark::State& state) {
  analysis::Figure3Config cfg;
  for (auto _ : state) {
    auto series = analysis::figure3(cfg);
    benchmark::DoNotOptimize(series.size());
  }
}
BENCHMARK(BM_Figure3Sweep);

}  // namespace

int main(int argc, char** argv) {
  print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
