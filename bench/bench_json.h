// Machine-readable bench output, in the spirit of google-benchmark's
// --benchmark_out=FILE: the summary sections of a bench harvest their rows
// into a JsonWriter, and when the user passes --json=FILE the writer emits
//
//   {"benchmark": "<name>", "entries": [{"name": "...", ...}, ...]}
//
// The flag is stripped from argv before benchmark::Initialize sees it, so
// it composes with the usual google-benchmark flags. Only the bench's own
// summary rows go here — the microbenchmark timings already have
// --benchmark_out for their JSON.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace tta::bench {

class JsonWriter {
 public:
  /// Starts a new result entry; subsequent field() calls attach to it.
  void begin_entry(const std::string& name) {
    entries_.push_back({name, {}});
  }

  void field(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    add(key, buf);
  }
  void field(const std::string& key, std::uint64_t value) {
    add(key, std::to_string(value));
  }
  void field(const std::string& key, const std::string& value) {
    add(key, "\"" + escape(value) + "\"");
  }
  /// Attaches an already-rendered JSON value (object, array, or literal)
  /// verbatim — for embedding structures built elsewhere, e.g.
  /// svc::JobOutcome::to_json().
  void raw(const std::string& key, std::string json_value) {
    add(key, std::move(json_value));
  }

  /// Writes all entries to `path`; returns false (with a message on
  /// stderr) if the file cannot be opened.
  bool write(const std::string& path, const std::string& bench_name) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write JSON results to %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"entries\": [",
                 escape(bench_name).c_str());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "%s\n    {\"name\": \"%s\"", i ? "," : "",
                   escape(entries_[i].name).c_str());
      for (const Field& fld : entries_[i].fields) {
        std::fprintf(f, ", \"%s\": %s", escape(fld.key).c_str(),
                     fld.json_value.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("JSON results written to %s\n", path.c_str());
    return true;
  }

  bool empty() const { return entries_.empty(); }

 private:
  struct Field {
    std::string key;
    std::string json_value;  ///< already-rendered JSON literal
  };
  struct Entry {
    std::string name;
    std::vector<Field> fields;
  };

  void add(const std::string& key, std::string json_value) {
    entries_.back().fields.push_back({key, std::move(json_value)});
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::vector<Entry> entries_;
};

/// Removes `--json=FILE` from argv (so benchmark::Initialize never sees an
/// unknown flag) and returns FILE, or "" when the flag is absent.
inline std::string take_json_flag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

}  // namespace tta::bench
