// Simulator throughput — not a paper artifact, but the figure that gates
// how large the fault-injection campaigns (E9) can be: TDMA slots simulated
// per second across topologies, cluster sizes, and logging modes.
#include <benchmark/benchmark.h>

#include "sim/cluster.h"

namespace {

using namespace tta;

sim::ClusterConfig make(sim::Topology topo, guardian::Authority a,
                        std::uint8_t nodes, bool keep_log) {
  sim::ClusterConfig cfg;
  cfg.topology = topo;
  cfg.guardian.authority = a;
  cfg.protocol.num_nodes = nodes;
  cfg.protocol.num_slots = nodes;
  cfg.keep_log = keep_log;
  return cfg;
}

void BM_StarClusterSteps(benchmark::State& state) {
  auto nodes = static_cast<std::uint8_t>(state.range(0));
  sim::Cluster cluster(
      make(sim::Topology::kStar, guardian::Authority::kSmallShifting, nodes,
           false),
      sim::FaultInjector{});
  for (auto _ : state) {
    cluster.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StarClusterSteps)->Arg(4)->Arg(8)->Arg(16);

void BM_BusClusterSteps(benchmark::State& state) {
  auto nodes = static_cast<std::uint8_t>(state.range(0));
  sim::Cluster cluster(
      make(sim::Topology::kBus, guardian::Authority::kPassive, nodes, false),
      sim::FaultInjector{});
  for (auto _ : state) {
    cluster.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusClusterSteps)->Arg(4)->Arg(8)->Arg(16);

void BM_StepsWithEventLog(benchmark::State& state) {
  sim::Cluster cluster(
      make(sim::Topology::kStar, guardian::Authority::kSmallShifting, 4,
           true),
      sim::FaultInjector{});
  for (auto _ : state) {
    cluster.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StepsWithEventLog);

void BM_StepsUnderFaultInjection(benchmark::State& state) {
  sim::FaultInjector fi;
  fi.add(sim::NodeFaultWindow{1, sim::NodeFaultMode::kSosValue, 0,
                              UINT64_MAX});
  fi.add(sim::CouplerFaultWindow{0, guardian::CouplerFault::kBadFrame, 100,
                                 200});
  sim::Cluster cluster(
      make(sim::Topology::kStar, guardian::Authority::kSmallShifting, 4,
           false),
      std::move(fi));
  for (auto _ : state) {
    cluster.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StepsUnderFaultInjection);

void BM_FullStartupToAllActive(benchmark::State& state) {
  for (auto _ : state) {
    sim::Cluster cluster(
        make(sim::Topology::kStar, guardian::Authority::kSmallShifting, 4,
             false),
        sim::FaultInjector{});
    bool ok = cluster.run_until_all_healthy_active(200);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_FullStartupToAllActive)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
