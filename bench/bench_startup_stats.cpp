// Substrate characterization: cluster startup latency.
//
// TTP/C's startup cost is dominated by the node-unique listen timeouts
// (num_slots + node_id) plus the big-bang round and per-node integration
// rounds. This bench measures the distribution over randomized power-on
// patterns — the statistic that determines how long a TTA system is blind
// after power-up, and the window during which the startup fault classes
// (masquerade, replay) have their opening.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "sim/cluster.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace tta;

struct StartupStats {
  util::Accumulator steps;
  util::Histogram histogram{0, 200};
  std::uint64_t failures = 0;
};

StartupStats measure(std::uint8_t nodes, std::uint64_t max_spread,
                     std::uint64_t runs) {
  StartupStats stats;
  for (std::uint64_t run = 0; run < runs; ++run) {
    util::Rng rng(run * 40503u + nodes);
    sim::ClusterConfig cfg;
    cfg.protocol.num_nodes = nodes;
    cfg.protocol.num_slots = nodes;
    cfg.guardian.authority = guardian::Authority::kSmallShifting;
    cfg.keep_log = false;
    cfg.power_on_steps.clear();
    for (std::uint8_t i = 0; i < nodes; ++i) {
      cfg.power_on_steps.push_back(
          max_spread == 0 ? 0 : rng.next_below(max_spread + 1));
    }
    sim::Cluster cluster(cfg, sim::FaultInjector{});
    if (!cluster.run_until_all_healthy_active(600)) {
      ++stats.failures;
      continue;
    }
    stats.steps.add(static_cast<double>(cluster.now()));
    stats.histogram.add(static_cast<std::int64_t>(cluster.now()));
  }
  return stats;
}

void print_stats() {
  std::printf("cluster startup latency (TDMA slots until every node is "
              "active; 200 randomized power-on patterns per row)\n\n");
  util::Table t({"nodes", "power-on spread [slots]", "mean", "min", "p50",
                 "p95", "max", "failures"});
  for (std::uint8_t nodes : {std::uint8_t{3}, std::uint8_t{4},
                             std::uint8_t{6}, std::uint8_t{8}}) {
    for (std::uint64_t spread : {std::uint64_t{0}, std::uint64_t{8},
                                 std::uint64_t{32}}) {
      StartupStats s = measure(nodes, spread, 200);
      t.add_row({std::to_string(nodes), std::to_string(spread),
                 util::Table::num(s.steps.mean(), 1),
                 util::Table::num(s.steps.min(), 0),
                 std::to_string(s.histogram.quantile(0.5)),
                 std::to_string(s.histogram.quantile(0.95)),
                 util::Table::num(s.steps.max(), 0),
                 std::to_string(s.failures)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("=> startup scales with the listen timeout (~2 rounds) plus "
              "one promotion round per node; wide power-on spread adds its "
              "own delay but never prevents convergence (0 failures). This "
              "whole window is where the paper's startup fault classes "
              "(masquerade, cold-start replay) operate.\n\n");
}

void BM_StartupLatency(benchmark::State& state) {
  auto nodes = static_cast<std::uint8_t>(state.range(0));
  for (auto _ : state) {
    StartupStats s = measure(nodes, 8, 20);
    benchmark::DoNotOptimize(s.steps.mean());
  }
}
BENCHMARK(BM_StartupLatency)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_stats();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
