// Substrate characterization: cluster startup latency.
//
// TTP/C's startup cost is dominated by the node-unique listen timeouts
// (num_slots + node_id) plus the big-bang round and per-node integration
// rounds. This bench measures the distribution over randomized power-on
// patterns — the statistic that determines how long a TTA system is blind
// after power-up, and the window during which the startup fault classes
// (masquerade, replay) have their opening.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "sim/cluster.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace tta;

struct StartupStats {
  util::Accumulator steps;
  util::Histogram histogram{0, 200};
  std::uint64_t failures = 0;
};

// Each run seeds its own RNG from (run, nodes), so runs are independent:
// the pool scatters them across threads into index-addressed slots and the
// fold below visits them in run order, producing statistics identical to
// the old sequential loop.
StartupStats measure(util::ThreadPool& pool, std::uint8_t nodes,
                     std::uint64_t max_spread, std::uint64_t runs) {
  struct Outcome {
    bool converged = false;
    std::uint64_t steps = 0;
  };
  std::vector<Outcome> outcomes(runs);
  pool.parallel_for(runs, [&](unsigned, std::size_t begin, std::size_t end) {
    for (std::size_t run = begin; run < end; ++run) {
      util::Rng rng(run * 40503u + nodes);
      sim::ClusterConfig cfg;
      cfg.protocol.num_nodes = nodes;
      cfg.protocol.num_slots = nodes;
      cfg.guardian.authority = guardian::Authority::kSmallShifting;
      cfg.keep_log = false;
      cfg.power_on_steps.clear();
      for (std::uint8_t i = 0; i < nodes; ++i) {
        cfg.power_on_steps.push_back(
            max_spread == 0 ? 0 : rng.next_below(max_spread + 1));
      }
      sim::Cluster cluster(cfg, sim::FaultInjector{});
      if (cluster.run_until_all_healthy_active(600)) {
        outcomes[run] = {true, cluster.now()};
      }
    }
  });
  StartupStats stats;
  for (const Outcome& o : outcomes) {
    if (!o.converged) {
      ++stats.failures;
      continue;
    }
    stats.steps.add(static_cast<double>(o.steps));
    stats.histogram.add(static_cast<std::int64_t>(o.steps));
  }
  return stats;
}

void print_stats() {
  std::printf("cluster startup latency (TDMA slots until every node is "
              "active; 200 randomized power-on patterns per row)\n\n");
  util::ThreadPool pool;
  util::Table t({"nodes", "power-on spread [slots]", "mean", "min", "p50",
                 "p95", "max", "failures"});
  for (std::uint8_t nodes : {std::uint8_t{3}, std::uint8_t{4},
                             std::uint8_t{6}, std::uint8_t{8}}) {
    for (std::uint64_t spread : {std::uint64_t{0}, std::uint64_t{8},
                                 std::uint64_t{32}}) {
      StartupStats s = measure(pool, nodes, spread, 200);
      t.add_row({std::to_string(nodes), std::to_string(spread),
                 util::Table::num(s.steps.mean(), 1),
                 util::Table::num(s.steps.min(), 0),
                 std::to_string(s.histogram.quantile(0.5)),
                 std::to_string(s.histogram.quantile(0.95)),
                 util::Table::num(s.steps.max(), 0),
                 std::to_string(s.failures)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("=> startup scales with the listen timeout (~2 rounds) plus "
              "one promotion round per node; wide power-on spread adds its "
              "own delay but never prevents convergence (0 failures). This "
              "whole window is where the paper's startup fault classes "
              "(masquerade, cold-start replay) operate.\n\n");
}

void BM_StartupLatency(benchmark::State& state) {
  auto nodes = static_cast<std::uint8_t>(state.range(0));
  util::ThreadPool pool;
  for (auto _ : state) {
    StartupStats s = measure(pool, nodes, 8, 20);
    benchmark::DoNotOptimize(s.steps.mean());
  }
}
BENCHMARK(BM_StartupLatency)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_stats();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
