// Wire-substrate characterization: the bit-exact frame pipeline.
//
// Prints the TTP/C frame-status taxonomy as computed from real CRCs —
// including the implicit-vs-explicit C-state nuance that motivates why the
// failed-slots counter only sees *explicit* disagreements — plus
// encode/decode throughput and the detection profile under injected bit
// errors (the 24-bit CRC leaves no undetected corruption at any tested
// burst size).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "sim/frame_pipeline.h"
#include "util/table.h"

namespace {

using namespace tta;

void print_taxonomy() {
  std::printf("frame-status taxonomy at wire fidelity (receiver C-state vs "
              "sender C-state):\n\n");
  sim::FramePipeline pipe(0, wire::LineCoding(4));
  ttpc::CState sender(100, 2, 0b0111);
  util::Table t({"scenario", "N-frame (implicit C-state)",
                 "I-frame (explicit C-state)"});
  auto judge = [&](const ttpc::CState& receiver, bool explicit_cs) {
    auto r = pipe.receive(pipe.transmit(sender, explicit_cs), receiver);
    return std::string(sim::to_string(r.status));
  };
  t.add_row({"C-states agree", judge(sender, false), judge(sender, true)});
  t.add_row({"global time differs", judge(ttpc::CState(101, 2, 0b0111), false),
             judge(ttpc::CState(101, 2, 0b0111), true)});
  t.add_row({"membership differs", judge(ttpc::CState(100, 2, 0b0101), false),
             judge(ttpc::CState(100, 2, 0b0101), true)});
  {
    util::Rng rng(1);
    auto wire = pipe.transmit(sender, false);
    sim::FramePipeline::corrupt(wire, rng, 3);
    auto n = pipe.receive(wire, sender);
    auto wire_i = pipe.transmit(sender, true);
    sim::FramePipeline::corrupt(wire_i, rng, 3);
    auto i = pipe.receive(wire_i, sender);
    t.add_row({"3 bits corrupted", sim::to_string(n.status),
               sim::to_string(i.status)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("=> an implicit C-state disagreement is physically a CRC "
              "failure: receivers see INVALID, not INCORRECT. Only explicit "
              "disagreements feed the clique-avoidance failed counter — the "
              "refinement behind the abstract model's id comparison.\n\n");

  std::printf("bit-error detection (500 trials per burst size, I-frames):\n\n");
  util::Table d({"flipped bits", "invalid", "undetected"});
  for (unsigned flips : {1u, 2u, 4u, 8u, 16u, 32u}) {
    util::Rng rng(flips);
    int invalid = 0, undetected = 0;
    for (int trial = 0; trial < 500; ++trial) {
      auto wire = pipe.transmit(sender, true);
      sim::FramePipeline::corrupt(wire, rng, flips);
      auto r = pipe.receive(wire, sender);
      if (r.status == sim::FrameStatus::kInvalid) {
        ++invalid;
      } else {
        ++undetected;
      }
    }
    d.add_row({std::to_string(flips), std::to_string(invalid),
               std::to_string(undetected)});
  }
  std::printf("%s\n", d.render().c_str());
}

void BM_EncodeIFrame(benchmark::State& state) {
  sim::FramePipeline pipe(0, wire::LineCoding(4));
  ttpc::CState sender(100, 2, 0b0111);
  for (auto _ : state) {
    auto wire = pipe.transmit(sender, true);
    benchmark::DoNotOptimize(wire.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeIFrame);

void BM_ReceiveIFrame(benchmark::State& state) {
  sim::FramePipeline pipe(0, wire::LineCoding(4));
  ttpc::CState sender(100, 2, 0b0111);
  auto wire = pipe.transmit(sender, true);
  for (auto _ : state) {
    auto r = pipe.receive(wire, sender);
    benchmark::DoNotOptimize(r.status);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReceiveIFrame);

void BM_EncodeDecodeXFrame(benchmark::State& state) {
  // The 2076-bit maximal frame: the worst case for per-bit CRC work.
  wire::WireFrame f;
  f.header.type = wire::WireFrameType::kX;
  f.payload.assign(240, 0x5A);
  for (auto _ : state) {
    auto bits = wire::encode_frame(f, 0);
    auto decoded = wire::decode_frame(bits, 0, wire::CStateImage{});
    benchmark::DoNotOptimize(decoded.status);
  }
  state.SetItemsProcessed(state.iterations() * 2076);
}
BENCHMARK(BM_EncodeDecodeXFrame);

}  // namespace

int main(int argc, char** argv) {
  print_taxonomy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
