// Experiment E11 (extension) — recoverability analysis (AG EF all-active).
//
// The paper's property is safety: no single coupler fault may expel an
// integrated node. This bench asks the complementary availability question:
// from every reachable state, can the cluster still get back to full
// operation? Two knobs: coupler authority, and whether hosts awaken frozen
// controllers (TTP/C leaves reintegration to the host).
//
// The result sharpens the paper's conclusion: the buffering coupler's
// replay damage is *permanent* unless a host intervenes, while the bounded
// coupler never needs intervention at all.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "mc/checker.h"
#include "util/table.h"

namespace {

using namespace tta;

mc::ModelConfig config(guardian::Authority a, bool allow_reinit) {
  mc::ModelConfig cfg;
  cfg.authority = a;
  cfg.max_out_of_slot_errors = 1;
  cfg.protocol.allow_reinit = allow_reinit;
  return cfg;
}

mc::Checker<mc::TtpcStarModel>::Goal all_active(
    const mc::TtpcStarModel& model) {
  std::size_t n = model.num_nodes();
  return [n](const mc::WorldState& w) {
    for (std::size_t i = 0; i < n; ++i) {
      if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
    }
    return true;
  };
}

void print_matrix() {
  std::printf("E11 (extension): AG EF full-operation — recoverability of "
              "the cluster (<=1 out-of-slot error)\n\n");
  util::Table t({"coupler authority", "host awakens frozen nodes",
                 "recoverable everywhere", "reachable states",
                 "dead states", "time [s]"});
  for (guardian::Authority a : guardian::kAllAuthorities) {
    for (bool reinit : {true, false}) {
      mc::TtpcStarModel model(config(a, reinit));
      auto res =
          mc::Checker(model).check_recoverability(all_active(model),
                                                  30'000'000);
      t.add_row({guardian::to_string(a), reinit ? "yes" : "no",
                 res.recoverable_everywhere ? "YES" : "NO",
                 std::to_string(res.stats.states_explored),
                 std::to_string(res.dead_states),
                 util::Table::num(res.stats.seconds, 2)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("=> non-buffering couplers never create dead states; the "
              "full-shifting coupler's single replay strands the cluster in "
              "permanently degraded states unless a host re-awakens the "
              "expelled node. Centralized authority converts a transient "
              "fault into a standing repair obligation.\n\n");
}

void BM_RecoverabilityAnalysis(benchmark::State& state) {
  auto cfg = config(guardian::Authority::kFullShifting, false);
  for (auto _ : state) {
    mc::TtpcStarModel model(cfg);
    auto res =
        mc::Checker(model).check_recoverability(all_active(model),
                                                30'000'000);
    benchmark::DoNotOptimize(res.dead_states);
  }
}
BENCHMARK(BM_RecoverabilityAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_matrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
