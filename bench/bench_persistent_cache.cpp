// Fault-tolerance overhead characterization: what crash-safety costs.
//
// The persistent cache buys restart survival with three mechanisms —
// record encode/decode, checksummed journal appends (fflush per record),
// and snapshot compaction — each of which sits on the serving path
// somewhere. This bench prices all of them, separating the pure codec
// cost (memory only) from the durable-append cost (journal fsync
// discipline) and the O(entries) costs (compaction, startup recovery),
// plus the worst-case decode: a counterexample trace replayed through the
// model to rebuild transition labels.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "svc/persistent_cache.h"
#include "svc/service.h"

namespace {

using namespace tta;

std::string fresh_dir(const char* name) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tta_bench_pcache" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

svc::JobSpec spec_n(std::uint64_t n) {
  svc::JobSpec spec;
  spec.model.authority = guardian::Authority::kPassive;
  spec.property = svc::Property::kNoIntegratedNodeFreezes;
  spec.max_states = 1'000'000 + n;  // distinct budget => distinct digest
  return spec;
}

svc::JobResult holds_result(const svc::JobSpec& spec, std::uint64_t states) {
  svc::JobResult r;
  r.digest = spec.digest();
  r.property = spec.property;
  r.verdict = mc::Verdict::kHolds;
  r.stats.states_explored = states;
  r.stats.transitions = states * 8;
  r.stats.max_depth = 52;
  r.stats.exhausted = true;
  r.stats.seconds = 0.3;
  return r;
}

/// One real violated run, produced once and shared: the only way to get a
/// representative counterexample trace for the replay-decode bench.
const svc::JobResult& violated_result(const svc::JobSpec** spec_out) {
  static svc::JobSpec spec = [] {
    svc::JobSpec s;
    s.model.authority = guardian::Authority::kFullShifting;
    s.model.max_out_of_slot_errors = 1;
    s.property = svc::Property::kNoIntegratedNodeFreezes;
    s.engine = svc::EngineChoice::kSerial;
    return s;
  }();
  static svc::JobResult result =
      svc::VerificationService{svc::ServiceConfig{}}.run(spec);
  *spec_out = &spec;
  return result;
}

void BM_EncodeResult(benchmark::State& state) {
  const svc::JobSpec spec = spec_n(0);
  const svc::JobResult result = holds_result(spec, 110'956);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc::encode_result(spec, result));
  }
}
BENCHMARK(BM_EncodeResult);

void BM_DecodeResult(benchmark::State& state) {
  const svc::JobSpec spec = spec_n(0);
  const std::vector<std::uint8_t> payload =
      svc::encode_result(spec, holds_result(spec, 110'956));
  svc::JobResult out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        svc::decode_result(spec, payload.data(), payload.size(), &out));
  }
}
BENCHMARK(BM_DecodeResult);

void BM_DecodeTraceReplay(benchmark::State& state) {
  // Decode pays one model step per trace edge to re-derive labels; this is
  // the price of storing packed states instead of trusting stored labels.
  const svc::JobSpec* spec = nullptr;
  const svc::JobResult& result = violated_result(&spec);
  const std::vector<std::uint8_t> payload = svc::encode_result(*spec, result);
  svc::JobResult out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        svc::decode_result(*spec, payload.data(), payload.size(), &out));
  }
  state.counters["trace_steps"] =
      static_cast<double>(result.trace.size());
}
BENCHMARK(BM_DecodeTraceReplay);

void BM_InsertDurable(benchmark::State& state) {
  // Each insert is a checksummed journal append flushed to the OS — the
  // durability tax paid once per newly concluded job.
  const std::string dir = fresh_dir("insert");
  svc::PersistentCache cache(
      svc::PersistentCacheConfig{dir, /*compact_after=*/1 << 30});
  std::uint64_t n = 0;
  for (auto _ : state) {
    const svc::JobSpec spec = spec_n(n);
    cache.insert(spec, holds_result(spec, n));
    ++n;
  }
}
BENCHMARK(BM_InsertDurable);

void BM_LookupHit(benchmark::State& state) {
  const std::string dir = fresh_dir("lookup");
  svc::PersistentCache cache(svc::PersistentCacheConfig{dir, 1 << 30});
  const std::int64_t entries = state.range(0);
  for (std::int64_t i = 0; i < entries; ++i) {
    const svc::JobSpec spec = spec_n(static_cast<std::uint64_t>(i));
    cache.insert(spec, holds_result(spec, static_cast<std::uint64_t>(i)));
  }
  svc::JobResult out;
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.lookup(spec_n(n % static_cast<std::uint64_t>(entries)), &out));
    ++n;
  }
}
BENCHMARK(BM_LookupHit)->Arg(16)->Arg(256);

void BM_Compact(benchmark::State& state) {
  // Compaction rewrites every live record into a fresh snapshot and
  // publishes it atomically — O(entries), amortized over many appends.
  const std::string dir = fresh_dir("compact");
  svc::PersistentCache cache(svc::PersistentCacheConfig{dir, 1 << 30});
  const std::int64_t entries = state.range(0);
  for (std::int64_t i = 0; i < entries; ++i) {
    const svc::JobSpec spec = spec_n(static_cast<std::uint64_t>(i));
    cache.insert(spec, holds_result(spec, static_cast<std::uint64_t>(i)));
  }
  for (auto _ : state) cache.compact();
  state.counters["entries"] = static_cast<double>(entries);
}
BENCHMARK(BM_Compact)->Arg(64)->Arg(512);

void BM_StartupRecovery(benchmark::State& state) {
  // The restart path: scan snapshot + journal, CRC-verify every frame,
  // index payloads by digest (decode stays lazy, so recovery cost is
  // independent of trace sizes).
  const std::string dir = fresh_dir("recover");
  const std::int64_t entries = state.range(0);
  {
    svc::PersistentCache cache(svc::PersistentCacheConfig{dir, 1 << 30});
    for (std::int64_t i = 0; i < entries; ++i) {
      const svc::JobSpec spec = spec_n(static_cast<std::uint64_t>(i));
      cache.insert(spec, holds_result(spec, static_cast<std::uint64_t>(i)));
    }
  }
  for (auto _ : state) {
    svc::PersistentCache reopened(svc::PersistentCacheConfig{dir, 1 << 30});
    benchmark::DoNotOptimize(reopened.size());
  }
  state.counters["entries"] = static_cast<double>(entries);
}
BENCHMARK(BM_StartupRecovery)->Arg(64)->Arg(512);

void print_summary() {
  // A one-screen statement of what the fault-tolerance layer costs per
  // operation class, for docs/SERVICE.md readers who want intuition
  // before numbers.
  std::printf(
      "persistent-cache cost model:\n"
      "  encode/decode      memory-only codec, per lookup/insert\n"
      "  insert             + journal append (CRC frame, fflush)\n"
      "  compact            O(live entries), atomic snapshot publish\n"
      "  startup recovery   O(records on disk), CRC scan, lazy decode\n"
      "  trace decode       + one model step per counterexample edge\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  print_summary();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
