// Experiment E10 — authority vs capability ablation.
//
// Section 6 lists the reasons an architect might want full-frame buffering
// (cheap implementation reuse, data-continuity mailboxes, CAN-emulation
// priority messaging). This table shows what each authority level buys and
// what it costs: the mailbox-class features arrive exactly when the
// out-of-slot replay fault becomes physically possible and the verified
// single-fault property collapses.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/experiments.h"
#include "guardian/mailbox.h"
#include "mc/checker.h"
#include "ttpc/medl.h"
#include "util/table.h"

namespace {

using namespace tta;

void print_data_continuity() {
  // The paper's concrete temptation, quantified: a mailbox-equipped
  // guardian papers over frame losses with cached (stale) values.
  std::printf("the temptation, measured — data continuity on a lossy "
              "channel (10000 slots, mailbox feature per authority):\n\n");
  ttpc::Medl medl = ttpc::Medl::uniform(ttpc::ProtocolConfig{});
  util::Table t({"authority", "loss rate", "availability",
                 "delivered stale (= frames outside their slot)"});
  for (double loss : {0.05, 0.2}) {
    for (guardian::Authority a : {guardian::Authority::kSmallShifting,
                                  guardian::Authority::kFullShifting}) {
      auto rep =
          guardian::measure_data_continuity(a, medl, 10'000, loss, 42);
      t.add_row({guardian::to_string(a), util::Table::num(loss, 2),
                 util::Table::num(rep.availability(10'000), 4),
                 std::to_string(rep.delivered_stale)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("=> the availability gain is real — and every stale delivery "
              "is, by construction, a frame replayed outside its original "
              "slot: the feature *is* the fault class.\n\n");
}

void print_ablation() {
  std::printf("E10: what each star-coupler authority level buys and costs\n\n");
  auto rows = core::run_authority_ablation();
  std::printf("%s\n", core::render_authority_ablation(rows).c_str());
  print_data_continuity();

  // Second ablation (DESIGN.md §7): the channel-fusion rule. Noise is
  // *invalid* (feeds neither clique counter), so incorrect-dominates only
  // bites when one channel carries a valid-but-stale frame while the other
  // is correct — i.e. exactly the replay situation. Optimistic fusion lets
  // the redundant channel mask single-channel replays; pessimistic fusion
  // forfeits that masking.
  std::printf("channel-fusion ablation:\n\n");
  std::printf("%-15s %-38s %-12s %s\n", "authority", "fusion rule",
              "property", "shortest counterexample");
  for (guardian::Authority a : {guardian::Authority::kSmallShifting,
                                guardian::Authority::kFullShifting}) {
    for (bool pessimistic : {false, true}) {
      mc::ModelConfig cfg;
      cfg.authority = a;
      cfg.protocol.bad_dominates_fusion = pessimistic;
      mc::TtpcStarModel model(cfg);
      auto res = mc::Checker(model).check(mc::no_integrated_node_freezes());
      std::printf("%-15s %-38s %-12s %s\n", guardian::to_string(a),
                  pessimistic ? "pessimistic (incorrect dominates)"
                              : "TTP/C optimistic (correct dominates)",
                  res.holds() ? "HOLDS" : "VIOLATED",
                  res.holds() ? "-"
                            : (std::to_string(res.trace.size()) + " steps")
                                  .c_str());
    }
  }
  std::printf("\n=> non-buffering couplers keep the property under either "
              "rule (noise is invalid, not incorrect); for the buffering "
              "coupler the optimistic rule at least masks replays that hit "
              "only one channel.\n\n");

  // Third ablation: the big-bang rule (cold-start integration hygiene).
  std::printf("big-bang ablation (full_shifting coupler, <=1 replay):\n\n");
  std::printf("%-44s %s\n", "big bang", "shortest counterexample");
  for (bool enabled : {true, false}) {
    mc::ModelConfig cfg;
    cfg.authority = guardian::Authority::kFullShifting;
    cfg.max_out_of_slot_errors = 1;
    cfg.protocol.big_bang_enabled = enabled;
    mc::TtpcStarModel model(cfg);
    auto res = mc::Checker(model).check(mc::no_integrated_node_freezes());
    std::printf("%-44s %zu steps\n", enabled ? "enabled" : "disabled",
                res.trace.size());
  }
  std::printf("\n=> removing the big bang shortens the attack: a single "
              "replayed cold-start captures listeners immediately.\n\n");
}

void BM_AblationMatrix(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = core::run_authority_ablation();
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_AblationMatrix)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
