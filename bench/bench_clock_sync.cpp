// Supporting substrate characterization — the TTP/C clock-synchronization
// service (fault-tolerant average).
//
// Not a numbered paper artifact, but the service underneath everything the
// paper models: the achieved precision sizes the receive windows whose
// hardware spread makes SOS faults possible, and bounds the ensemble's rho
// (eq. 2). Prints steady-state precision across drift spreads and the
// Byzantine resilience boundary (1 liar tolerated among 4, 2 are not).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "ttpc/clocksync.h"
#include "util/table.h"

namespace {

using namespace tta;

ttpc::SyncConfig ensemble(std::size_t n, double spread_ppm,
                          std::size_t faulty = 0) {
  ttpc::SyncConfig cfg;
  for (std::size_t i = 0; i < n; ++i) {
    ttpc::ClockModel c;
    c.drift_ppm = spread_ppm *
                  (static_cast<double>(i) / static_cast<double>(n - 1) - 0.5);
    c.jitter = 1e-7;
    if (i >= 1 && i <= faulty) {
      c.faulty = true;
      c.jitter = 0.5;
    }
    cfg.clocks.push_back(c);
  }
  return cfg;
}

std::pair<double, double> steady_state(const ttpc::SyncConfig& cfg) {
  ttpc::ClockSyncSimulation sim(cfg);
  auto samples = sim.run(200);
  double precision = 0.0, accuracy = 0.0;
  for (std::size_t r = 100; r < samples.size(); ++r) {
    precision = std::max(precision, samples[r].precision);
    accuracy = std::max(accuracy, samples[r].accuracy);
  }
  return {precision, accuracy};
}

void print_tables() {
  std::printf("Clock synchronization (FTA): steady-state precision vs "
              "oscillator drift spread (4 clocks, 1 s rounds)\n\n");
  util::Table t({"drift spread [ppm]", "steady precision [s]",
                 "analytic bound [s]", "within bound"});
  for (double spread : {2.0, 20.0, 200.0, 2'000.0, 20'000.0}) {
    ttpc::SyncConfig cfg = ensemble(4, spread);
    ttpc::ClockSyncSimulation sim(cfg);
    auto [precision, accuracy] = steady_state(cfg);
    double bound = sim.precision_bound();
    t.add_row({util::Table::num(spread, 0),
               util::Table::num(precision, 8),
               util::Table::num(bound, 8),
               precision <= bound ? "yes" : "NO"});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("Byzantine resilience boundary (+-100 ppm ensemble, liars "
              "have 0.5 s jitter):\n\n");
  util::Table b({"clocks", "faulty", "FTA discards k",
                 "healthy precision [s]", "healthy accuracy [s]",
                 "synchronized?"});
  for (auto [n, faulty, k] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{4, 0, 1},
        {4, 1, 1},
        {4, 2, 1},
        {7, 2, 1},
        {7, 2, 2}}) {
    ttpc::SyncConfig cfg = ensemble(n, 200.0, faulty);
    cfg.fta_discard = k;
    auto [precision, accuracy] = steady_state(cfg);
    bool ok = accuracy < 0.05;
    b.add_row({std::to_string(n), std::to_string(faulty), std::to_string(k),
               util::Table::num(precision, 8), util::Table::num(accuracy, 4),
               ok ? "yes" : "NO"});
  }
  std::printf("%s\n", b.render().c_str());
  std::printf("=> the FTA with k discards rides out exactly k arbitrary "
              "clocks, independent of ensemble size: one liar among four is "
              "tolerated at k = 1 (TTP/C's single-fault hypothesis), a "
              "second needs k = 2 — which in turn needs 2k < n-1 honest "
              "measurements, i.e. a larger cluster.\n\n");
}

void BM_SyncRound(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  ttpc::ClockSyncSimulation sim(ensemble(n, 200.0));
  for (auto _ : state) {
    auto s = sim.run_round();
    benchmark::DoNotOptimize(s.precision);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyncRound)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
