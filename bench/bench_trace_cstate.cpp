// Experiment E3 — the duplicated-C-state counterexample (paper Section 5.2,
// second trace).
//
// "We obtain such a trace by adding a constraint which prohibits the
// duplication of cold start frames": with cold-start replay forbidden, the
// checker must find a violation that duplicates a C-state frame instead —
// and does.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/experiments.h"

namespace {

void print_trace() {
  tta::core::TraceExperiment exp = tta::core::run_trace_cstate_duplication();
  std::printf("E3: full-shifting coupler, <=1 out-of-slot error, cold-start "
              "duplication prohibited -> counterexample (%zu steps, %llu "
              "states, %.3fs)\n\n",
              exp.result.trace.size(),
              static_cast<unsigned long long>(
                  exp.result.stats.states_explored),
              exp.result.stats.seconds);
  std::printf("%s\n", exp.narration.c_str());
  std::printf("per-step detail:\n%s\n", exp.table.c_str());
  std::printf("paper: the coupler replicates a C-state frame into the next "
              "slot; a node integrating on it adopts a stale slot position\n"
              "and freezes due to a clique avoidance error.\n\n");
}

void BM_CStateTrace(benchmark::State& state) {
  for (auto _ : state) {
    auto exp = tta::core::run_trace_cstate_duplication();
    benchmark::DoNotOptimize(exp.result.trace.size());
  }
}
BENCHMARK(BM_CStateTrace)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_trace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
