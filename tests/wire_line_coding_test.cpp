#include "wire/line_coding.h"

#include <gtest/gtest.h>

namespace tta::wire {
namespace {

BitStream some_frame() {
  BitStream bs;
  bs.push_bits(0x1234ABC, 28);
  return bs;
}

TEST(LineCoding, DefaultPreambleIsPaperLe) {
  EXPECT_EQ(LineCoding().preamble_bits(), 4u);
}

TEST(LineCoding, EncodePrependsPreamble) {
  LineCoding lc(4);
  BitStream wire = lc.encode(some_frame());
  EXPECT_EQ(wire.size(), 32u);
  EXPECT_EQ(wire.read_bits(0, 4), 0b1010u);  // alternating sync
}

TEST(LineCoding, DecodeStripsPreamble) {
  LineCoding lc(6);
  BitStream frame = some_frame();
  auto decoded = lc.decode(lc.encode(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
}

TEST(LineCoding, DamagedPreambleRejected) {
  LineCoding lc(4);
  BitStream wire = lc.encode(some_frame());
  wire.flip_bit(1);
  EXPECT_FALSE(lc.decode(wire).has_value());
}

TEST(LineCoding, TooShortInputRejected) {
  LineCoding lc(8);
  BitStream tiny;
  tiny.push_bits(0b101, 3);
  EXPECT_FALSE(lc.decode(tiny).has_value());
}

TEST(LineCoding, WireBitsBookkeeping) {
  LineCoding lc(4);
  EXPECT_EQ(lc.wire_bits(28), 32u);
  EXPECT_EQ(lc.wire_bits(2076), 2080u);
}

TEST(LineCoding, EmptyFrameStillCarriesPreamble) {
  LineCoding lc(4);
  BitStream empty;
  BitStream wire = lc.encode(empty);
  EXPECT_EQ(wire.size(), 4u);
  auto decoded = lc.decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

}  // namespace
}  // namespace tta::wire
