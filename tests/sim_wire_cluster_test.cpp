// The wire-fidelity cluster: startup over real encoded frames, CRC-backed
// C-state agreement, the replay fault at bit level — and the refinement
// theorem in executable form: fault-free wire-level protocol evolution
// matches the frame-level simulator step for step.
#include "sim/wire_cluster.h"

#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace tta::sim {
namespace {

WireClusterConfig wire_config(guardian::Authority a) {
  WireClusterConfig cfg;
  cfg.authority = a;
  return cfg;
}

TEST(WireCluster, StartsUpOverRealFrames) {
  WireCluster cluster(wire_config(guardian::Authority::kSmallShifting),
                      FaultInjector{});
  ASSERT_TRUE(cluster.run_until_all_active(200));
  EXPECT_EQ(cluster.clique_frozen_count(), 0u);
  EXPECT_TRUE(cluster.integrated_cstates_agree());
}

TEST(WireCluster, GlobalTimeAdvancesInLockstep) {
  WireCluster cluster(wire_config(guardian::Authority::kSmallShifting),
                      FaultInjector{});
  ASSERT_TRUE(cluster.run_until_all_active(200));
  std::uint16_t t = cluster.node(1).cstate().global_time();
  cluster.run(10);
  EXPECT_EQ(cluster.node(1).cstate().global_time(),
            static_cast<std::uint16_t>(t + 10));
  EXPECT_TRUE(cluster.integrated_cstates_agree());
}

TEST(WireCluster, MembershipImagesConverge) {
  WireCluster cluster(wire_config(guardian::Authority::kSmallShifting),
                      FaultInjector{});
  ASSERT_TRUE(cluster.run_until_all_active(200));
  cluster.run(8);
  for (ttpc::NodeId id = 1; id <= 4; ++id) {
    EXPECT_EQ(cluster.node(id).cstate().membership(), 0b1111)
        << "node " << int(id);
  }
}

TEST(WireCluster, RefinementMatchesFrameLevelSimulator) {
  // The same protocol, two fidelities, identical fault-free evolution.
  WireCluster wire(wire_config(guardian::Authority::kSmallShifting),
                   FaultInjector{});
  ClusterConfig frame_cfg;
  frame_cfg.topology = Topology::kStar;
  frame_cfg.guardian.authority = guardian::Authority::kSmallShifting;
  Cluster frame(frame_cfg, FaultInjector{});

  for (int step = 0; step < 120; ++step) {
    wire.step();
    frame.step();
    for (ttpc::NodeId id = 1; id <= 4; ++id) {
      ASSERT_EQ(wire.node(id).state(), frame.node(id).state())
          << "diverged at step " << step << " node " << int(id);
    }
  }
}

TEST(WireCluster, RefinementHoldsUnderTransientSilence) {
  FaultInjector fi_wire, fi_frame;
  fi_wire.add(CouplerFaultWindow{0, guardian::CouplerFault::kSilence, 30, 60});
  fi_frame.add(CouplerFaultWindow{0, guardian::CouplerFault::kSilence, 30, 60});

  WireCluster wire(wire_config(guardian::Authority::kSmallShifting),
                   std::move(fi_wire));
  ClusterConfig frame_cfg;
  frame_cfg.topology = Topology::kStar;
  frame_cfg.guardian.authority = guardian::Authority::kSmallShifting;
  Cluster frame(frame_cfg, std::move(fi_frame));

  for (int step = 0; step < 120; ++step) {
    wire.step();
    frame.step();
    for (ttpc::NodeId id = 1; id <= 4; ++id) {
      ASSERT_EQ(wire.node(id).state(), frame.node(id).state())
          << "diverged at step " << step << " node " << int(id);
    }
  }
}

TEST(WireCluster, NoiseFaultIsInvalidNotIncorrect) {
  // Bad-frame faults produce undecodable bits: nobody's failed counter
  // moves and nobody freezes (the invalid != incorrect distinction, at
  // full fidelity).
  FaultInjector fi;
  fi.add(CouplerFaultWindow{1, guardian::CouplerFault::kBadFrame, 20, 120});
  WireCluster cluster(wire_config(guardian::Authority::kSmallShifting),
                      std::move(fi));
  cluster.run(300);
  EXPECT_EQ(cluster.clique_frozen_count(), 0u);
  EXPECT_EQ(cluster.count_in_state(ttpc::CtrlState::kActive), 4u);
}

TEST(WireCluster, BitLevelReplayFreezesHealthyNodes) {
  // The headline failure at full wire fidelity: the coupler's frame store
  // re-drives the buffered *bits* of a cold-start frame one slot late; the
  // stale frame decodes perfectly, an integrating node adopts it, and
  // clique avoidance expels someone.
  FaultInjector fi;
  fi.add(CouplerFaultWindow{0, guardian::CouplerFault::kOutOfSlot, 13, 13});
  WireCluster cluster(wire_config(guardian::Authority::kFullShifting),
                      std::move(fi));
  cluster.run(200);
  EXPECT_GT(cluster.clique_frozen_count(), 0u);
}

TEST(WireCluster, ReplayImpossibleWithoutBufferingAuthority) {
  FaultInjector fi;
  fi.add(CouplerFaultWindow{0, guardian::CouplerFault::kOutOfSlot, 13, 13});
  WireCluster cluster(wire_config(guardian::Authority::kSmallShifting),
                      std::move(fi));
  cluster.run(200);
  EXPECT_EQ(cluster.clique_frozen_count(), 0u);
  EXPECT_EQ(cluster.count_in_state(ttpc::CtrlState::kActive), 4u);
}

TEST(WireCluster, SixNodesStartUp) {
  WireClusterConfig cfg = wire_config(guardian::Authority::kSmallShifting);
  cfg.protocol.num_nodes = 6;
  cfg.protocol.num_slots = 6;
  WireCluster cluster(cfg, FaultInjector{});
  ASSERT_TRUE(cluster.run_until_all_active(400));
  EXPECT_TRUE(cluster.integrated_cstates_agree());
}

TEST(WireCluster, LogRendersWireTraffic) {
  WireCluster cluster(wire_config(guardian::Authority::kSmallShifting),
                      FaultInjector{});
  cluster.run(30);
  std::string log = cluster.log().render();
  EXPECT_NE(log.find("cold_start"), std::string::npos);
}

}  // namespace
}  // namespace tta::sim
