// util::EventLoop contract tests (tests/util_event_loop_test.cpp): the
// readiness semantics svc::Server leans on — level-triggered interest
// updates, dormant registrations that still surface broken peers (the
// accept-backoff mute), stale-event discard when a handler unwatches a
// sibling fd mid-dispatch, and EINTR reported as a quiet zero so a
// signal-driven stop flag is re-checked instead of wedging the loop.
#include "util/event_loop.h"

#include <gtest/gtest.h>

#include <csignal>
#include <chrono>
#include <set>
#include <thread>

#include <fcntl.h>
#include <poll.h>  // completes ::pollfd for the EventLoop scratch vector
#include <sys/socket.h>
#include <unistd.h>

namespace tta::util {
namespace {

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
  }
  ~Pipe() {
    if (read_fd >= 0) close(read_fd);
    if (write_fd >= 0) close(write_fd);
  }
  void put(char byte) { EXPECT_EQ(write(write_fd, &byte, 1), 1); }
};

TEST(EventLoop, ReportsReadableOnlyOncePendingBytesExist) {
  Pipe pipe;
  EventLoop loop;
  loop.watch(pipe.read_fd, /*read=*/true, /*write=*/false);
  EXPECT_TRUE(loop.watching(pipe.read_fd));
  EXPECT_EQ(loop.size(), 1u);

  EXPECT_EQ(loop.poll_once(0, [](const EventLoop::Event&) { FAIL(); }), 0);

  pipe.put('x');
  EventLoop::Event seen;
  EXPECT_EQ(loop.poll_once(1'000,
                           [&](const EventLoop::Event& ev) { seen = ev; }),
            1);
  EXPECT_EQ(seen.fd, pipe.read_fd);
  EXPECT_TRUE(seen.readable);
  EXPECT_FALSE(seen.writable);
  EXPECT_FALSE(seen.broken);
}

TEST(EventLoop, ReportsWritableWhenAskedAndEmptyLoopReturnsImmediately) {
  EventLoop loop;
  // No fds registered: poll_once must not sleep out the timeout.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(loop.poll_once(5'000, [](const EventLoop::Event&) { FAIL(); }),
            0);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(1));

  Pipe pipe;
  loop.watch(pipe.write_fd, /*read=*/false, /*write=*/true);
  EventLoop::Event seen;
  EXPECT_EQ(loop.poll_once(1'000,
                           [&](const EventLoop::Event& ev) { seen = ev; }),
            1);
  EXPECT_EQ(seen.fd, pipe.write_fd);
  EXPECT_TRUE(seen.writable);
}

// Interest is an update, not an accumulation: re-watching with both flags
// false keeps the fd registered but silences its readiness — the server
// mutes its listener this way during accept backoff without forgetting it.
TEST(EventLoop, DormantRegistrationSilencesReadinessButKeepsTheFd) {
  Pipe pipe;
  pipe.put('x');
  EventLoop loop;
  loop.watch(pipe.read_fd, /*read=*/true, /*write=*/false);
  EXPECT_EQ(loop.poll_once(1'000, [](const EventLoop::Event&) {}), 1);

  loop.watch(pipe.read_fd, /*read=*/false, /*write=*/false);
  EXPECT_TRUE(loop.watching(pipe.read_fd));
  EXPECT_EQ(loop.poll_once(0, [](const EventLoop::Event&) { FAIL(); }), 0);

  // Un-muting sees the same level-triggered byte again.
  loop.watch(pipe.read_fd, /*read=*/true, /*write=*/false);
  EXPECT_EQ(loop.poll_once(1'000, [](const EventLoop::Event&) {}), 1);

  loop.unwatch(pipe.read_fd);
  EXPECT_FALSE(loop.watching(pipe.read_fd));
  EXPECT_EQ(loop.size(), 0u);
  EXPECT_EQ(loop.poll_once(0, [](const EventLoop::Event&) { FAIL(); }), 0);
}

// POLLHUP is delivered regardless of the requested event set, so even a
// dormant fd learns its peer vanished — and the event arrives with
// readable set so the owner drains the pending EOF through recv.
TEST(EventLoop, DormantFdStillReportsBrokenPeer) {
  int pair[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  EventLoop loop;
  loop.watch(pair[0], /*read=*/false, /*write=*/false);
  EXPECT_EQ(loop.poll_once(0, [](const EventLoop::Event&) { FAIL(); }), 0);

  close(pair[1]);
  EventLoop::Event seen;
  EXPECT_EQ(loop.poll_once(1'000,
                           [&](const EventLoop::Event& ev) { seen = ev; }),
            1);
  EXPECT_EQ(seen.fd, pair[0]);
  EXPECT_TRUE(seen.broken);
  EXPECT_TRUE(seen.readable);
  close(pair[0]);
}

// A handler may unwatch any fd, including one with an undelivered event in
// the same round; the loop must discard that stale event instead of
// handing out a ready fd the handler already closed.
TEST(EventLoop, UnwatchDuringDispatchDiscardsTheSiblingsStaleEvent) {
  Pipe a;
  Pipe b;
  a.put('x');
  b.put('x');
  EventLoop loop;
  loop.watch(a.read_fd, /*read=*/true, /*write=*/false);
  loop.watch(b.read_fd, /*read=*/true, /*write=*/false);

  std::set<int> handled;
  const int dispatched =
      loop.poll_once(1'000, [&](const EventLoop::Event& ev) {
        handled.insert(ev.fd);
        // Drop the *other* fd on the first dispatch of the round.
        loop.unwatch(ev.fd == a.read_fd ? b.read_fd : a.read_fd);
      });
  EXPECT_EQ(dispatched, 1);
  EXPECT_EQ(handled.size(), 1u);
  EXPECT_EQ(loop.size(), 1u);
}

// poll(2) returns EINTR when a signal lands mid-wait; the loop reports
// that as 0 dispatched events (not -1) so the caller's stop flag gets
// re-checked instead of the loop treating a signal as a failure.
TEST(EventLoop, SignalInterruptionReportsZeroNotFailure) {
  struct sigaction action = {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: poll must observe EINTR
  struct sigaction previous = {};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

  Pipe quiet;
  EventLoop loop;
  loop.watch(quiet.read_fd, /*read=*/true, /*write=*/false);

  int result = -2;
  std::chrono::steady_clock::duration waited{};
  std::thread poller([&] {
    const auto start = std::chrono::steady_clock::now();
    result =
        loop.poll_once(30'000, [](const EventLoop::Event&) { FAIL(); });
    waited = std::chrono::steady_clock::now() - start;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  pthread_kill(poller.native_handle(), SIGUSR1);
  poller.join();
  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);

  EXPECT_EQ(result, 0);
  EXPECT_LT(waited, std::chrono::seconds(10));
}

}  // namespace
}  // namespace tta::util
