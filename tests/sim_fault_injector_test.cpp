#include "sim/fault_injector.h"

#include <gtest/gtest.h>

namespace tta::sim {
namespace {

TEST(FaultInjector, EmptyByDefault) {
  FaultInjector fi;
  EXPECT_TRUE(fi.empty());
  EXPECT_EQ(fi.coupler_fault(0, 0), guardian::CouplerFault::kNone);
  EXPECT_EQ(fi.node_fault(1, 0), NodeFaultMode::kNone);
  EXPECT_EQ(fi.local_guardian_fault(1, 0), guardian::LocalGuardianFault::kNone);
  EXPECT_FALSE(fi.node_ever_faulty(1));
}

TEST(FaultInjector, CouplerWindowBoundsAreInclusive) {
  FaultInjector fi;
  fi.add(CouplerFaultWindow{0, guardian::CouplerFault::kSilence, 10, 20});
  EXPECT_EQ(fi.coupler_fault(0, 9), guardian::CouplerFault::kNone);
  EXPECT_EQ(fi.coupler_fault(0, 10), guardian::CouplerFault::kSilence);
  EXPECT_EQ(fi.coupler_fault(0, 20), guardian::CouplerFault::kSilence);
  EXPECT_EQ(fi.coupler_fault(0, 21), guardian::CouplerFault::kNone);
}

TEST(FaultInjector, ChannelsAreIndependent) {
  FaultInjector fi;
  fi.add(CouplerFaultWindow{1, guardian::CouplerFault::kBadFrame, 0, 100});
  EXPECT_EQ(fi.coupler_fault(0, 50), guardian::CouplerFault::kNone);
  EXPECT_EQ(fi.coupler_fault(1, 50), guardian::CouplerFault::kBadFrame);
}

TEST(FaultInjector, LaterEntriesWinOnOverlap) {
  FaultInjector fi;
  fi.add(NodeFaultWindow{2, NodeFaultMode::kSilent, 0, 100});
  fi.add(NodeFaultWindow{2, NodeFaultMode::kBabbling, 50, 60});
  EXPECT_EQ(fi.node_fault(2, 40), NodeFaultMode::kSilent);
  EXPECT_EQ(fi.node_fault(2, 55), NodeFaultMode::kBabbling);
  EXPECT_EQ(fi.node_fault(2, 70), NodeFaultMode::kSilent);
}

TEST(FaultInjector, NodeEverFaultyCoversNodeFaults) {
  FaultInjector fi;
  fi.add(NodeFaultWindow{3, NodeFaultMode::kSosValue, 100, 200});
  EXPECT_TRUE(fi.node_ever_faulty(3));
  EXPECT_FALSE(fi.node_ever_faulty(2));
}

TEST(FaultInjector, FaultyLocalGuardianMakesNodeFaulty) {
  // Under the TTP/C fault hypothesis the node + its bus guardian form one
  // fault-containment region on the bus.
  FaultInjector fi;
  fi.add(LocalGuardianFaultWindow{2, guardian::LocalGuardianFault::kStuckOpen,
                                  0, UINT64_MAX});
  EXPECT_TRUE(fi.node_ever_faulty(2));
  EXPECT_FALSE(fi.node_ever_faulty(1));
}

TEST(FaultInjector, ExplicitNoneWindowDoesNotMarkFaulty) {
  FaultInjector fi;
  fi.add(NodeFaultWindow{1, NodeFaultMode::kNone, 0, 10});
  EXPECT_FALSE(fi.node_ever_faulty(1));
}

TEST(FaultInjector, TransientWindowExpires) {
  FaultInjector fi;
  fi.add(NodeFaultWindow{1, NodeFaultMode::kBabbling, 5, 5});
  EXPECT_EQ(fi.node_fault(1, 4), NodeFaultMode::kNone);
  EXPECT_EQ(fi.node_fault(1, 5), NodeFaultMode::kBabbling);
  EXPECT_EQ(fi.node_fault(1, 6), NodeFaultMode::kNone);
}

}  // namespace
}  // namespace tta::sim
