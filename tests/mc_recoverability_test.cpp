// AG EF analysis (experiment E11, an extension beyond the paper's safety
// property): from every reachable state, can the cluster still reach full
// operation? Separates *transient* damage (recoverable with host help) from
// *permanent* degradation.
#include <gtest/gtest.h>

#include "mc/checker.h"

namespace tta::mc {
namespace {

ModelConfig config(guardian::Authority a, bool allow_reinit) {
  ModelConfig cfg;
  cfg.authority = a;
  cfg.max_out_of_slot_errors = 1;  // the paper's single-fault hypothesis
  cfg.protocol.allow_reinit = allow_reinit;
  return cfg;
}

Checker<TtpcStarModel>::Goal all_active(const TtpcStarModel& model) {
  std::size_t n = model.num_nodes();
  return [n](const WorldState& w) {
    for (std::size_t i = 0; i < n; ++i) {
      if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
    }
    return true;
  };
}

TEST(Recoverability, NonBufferingCouplerIsAlwaysRecoverable) {
  // Even without hosts awakening anyone: a small-shifting coupler never
  // forces a freeze, so full operation stays reachable from everywhere.
  TtpcStarModel model(
      config(guardian::Authority::kSmallShifting, /*allow_reinit=*/false));
  auto res = Checker(model).check_recoverability(all_active(model));
  EXPECT_TRUE(res.stats.exhausted);
  EXPECT_TRUE(res.recoverable_everywhere);
  EXPECT_EQ(res.dead_states, 0u);
}

TEST(Recoverability, HostInterventionMakesReplayDamageTransient) {
  // With freeze -> init available (the host awakens frozen controllers),
  // even the buffering coupler's replay damage is recoverable.
  TtpcStarModel model(
      config(guardian::Authority::kFullShifting, /*allow_reinit=*/true));
  auto res = Checker(model).check_recoverability(all_active(model));
  EXPECT_TRUE(res.stats.exhausted);
  EXPECT_TRUE(res.recoverable_everywhere);
}

TEST(Recoverability, WithoutHostsOneReplayCanBePermanent) {
  // The extension headline: absent host intervention, a single out-of-slot
  // replay can leave the cluster in a state from which full operation is
  // unreachable forever.
  TtpcStarModel model(
      config(guardian::Authority::kFullShifting, /*allow_reinit=*/false));
  auto res = Checker(model).check_recoverability(all_active(model));
  EXPECT_TRUE(res.stats.exhausted);
  EXPECT_FALSE(res.recoverable_everywhere);
  EXPECT_GT(res.dead_states, 0u);
  // The witness path enters the dead region through a replay-induced
  // clique freeze.
  ASSERT_FALSE(res.witness.empty());
  bool replay_seen = false;
  for (const auto& step : res.witness) {
    replay_seen |= step.label.fault0 == guardian::CouplerFault::kOutOfSlot ||
                   step.label.fault1 == guardian::CouplerFault::kOutOfSlot;
  }
  EXPECT_TRUE(replay_seen);
}

TEST(Recoverability, WitnessIsAConnectedPathFromInit) {
  TtpcStarModel model(
      config(guardian::Authority::kFullShifting, /*allow_reinit=*/false));
  auto res = Checker(model).check_recoverability(all_active(model));
  ASSERT_FALSE(res.witness.empty());
  EXPECT_EQ(res.witness.front().before, model.initial());
  for (std::size_t i = 1; i < res.witness.size(); ++i) {
    EXPECT_EQ(res.witness[i - 1].after, res.witness[i].before);
  }
}

TEST(Recoverability, BudgetExhaustionIsReportedNotGuessed) {
  TtpcStarModel model(
      config(guardian::Authority::kFullShifting, /*allow_reinit=*/false));
  auto res =
      Checker(model).check_recoverability(all_active(model), /*max=*/1'000);
  EXPECT_FALSE(res.stats.exhausted);  // verdict withheld, not fabricated
  // The bail-out must not leak the default-true verdict, and it must still
  // report an honest account of the partial exploration.
  EXPECT_FALSE(res.recoverable_everywhere);
  EXPECT_EQ(res.dead_states, 0u);
  EXPECT_TRUE(res.witness.empty());
  EXPECT_GT(res.stats.states_explored, 1'000u);
  EXPECT_GT(res.stats.transitions, 0u);
  EXPECT_GT(res.stats.seconds, 0.0);
}

TEST(Recoverability, GoalStatesThemselvesAreInTheClosure) {
  // Once all-active, transient silence/bad faults cannot push the cluster
  // out of the recoverable region.
  TtpcStarModel model(
      config(guardian::Authority::kPassive, /*allow_reinit=*/false));
  auto res = Checker(model).check_recoverability(all_active(model));
  EXPECT_TRUE(res.recoverable_everywhere);
}

}  // namespace
}  // namespace tta::mc
