#include "guardian/local_guardian.h"

#include <gtest/gtest.h>

#include "ttpc/config.h"

namespace tta::guardian {
namespace {

using ttpc::ChannelFrame;
using ttpc::FrameKind;

ttpc::Medl medl() { return ttpc::Medl::uniform(ttpc::ProtocolConfig{}); }

ChannelFrame frame(ttpc::SlotNumber id) { return {FrameKind::kCState, id}; }

TEST(LocalGuardian, AllowsOwnerInItsSlot) {
  LocalGuardian g(2, medl());
  EXPECT_TRUE(g.allows(2, frame(2)));
}

TEST(LocalGuardian, BlocksOwnerOutsideItsSlot) {
  LocalGuardian g(2, medl());
  EXPECT_FALSE(g.allows(1, frame(2)));
  EXPECT_FALSE(g.allows(3, frame(2)));
  EXPECT_FALSE(g.allows(4, frame(2)));
}

TEST(LocalGuardian, SilenceAlwaysAllowed) {
  LocalGuardian g(2, medl());
  EXPECT_TRUE(g.allows(1, ChannelFrame{}));
  g.inject(LocalGuardianFault::kStuckClosed);
  EXPECT_TRUE(g.allows(1, ChannelFrame{}));
}

TEST(LocalGuardian, UnsyncedCannotPolice) {
  // During startup there is no time base; the guardian must pass traffic
  // (which is why the bus topology cannot stop startup masquerading).
  LocalGuardian g(2, medl());
  EXPECT_TRUE(g.allows(std::nullopt, frame(2)));
}

TEST(LocalGuardian, StuckClosedSilencesOwnNodeOnly) {
  LocalGuardian g(2, medl());
  g.inject(LocalGuardianFault::kStuckClosed);
  EXPECT_FALSE(g.allows(2, frame(2)));  // even in its own slot
  EXPECT_EQ(g.fault(), LocalGuardianFault::kStuckClosed);
}

TEST(LocalGuardian, StuckOpenLosesProtection) {
  LocalGuardian g(2, medl());
  g.inject(LocalGuardianFault::kStuckOpen);
  EXPECT_TRUE(g.allows(1, frame(2)));  // babbling passes
  EXPECT_TRUE(g.allows(2, frame(2)));
}

TEST(LocalGuardian, FaultIsRevertible) {
  LocalGuardian g(2, medl());
  g.inject(LocalGuardianFault::kStuckClosed);
  g.inject(LocalGuardianFault::kNone);
  EXPECT_TRUE(g.allows(2, frame(2)));
}

TEST(LocalGuardian, Names) {
  EXPECT_STREQ(to_string(LocalGuardianFault::kNone), "none");
  EXPECT_STREQ(to_string(LocalGuardianFault::kStuckClosed), "stuck_closed");
  EXPECT_STREQ(to_string(LocalGuardianFault::kStuckOpen), "stuck_open");
}

}  // namespace
}  // namespace tta::guardian
