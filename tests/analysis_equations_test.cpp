// Section 6 equations, including every worked number the paper prints.
#include "analysis/equations.h"

#include <gtest/gtest.h>

#include "analysis/frame_catalog.h"

namespace tta::analysis {
namespace {

TEST(Eq2, RelativeClockDifference) {
  EXPECT_DOUBLE_EQ(relative_clock_difference(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_clock_difference(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(relative_clock_difference(1.0, 2.0), 0.5);  // symmetric
}

TEST(Eq5, HundredPpmCrystalsGiveRho0002) {
  // "the difference in clock rates between the two is 0.0002" — eq. (5).
  EXPECT_DOUBLE_EQ(rho_from_ppm(100.0), 0.0002);
}

TEST(Eq5, ExactFormIsSlightlySmaller) {
  // The paper's 2*tol form overestimates by a factor (1 + tol).
  EXPECT_LT(rho_from_ppm_exact(100.0), rho_from_ppm(100.0));
  EXPECT_NEAR(rho_from_ppm_exact(100.0), 0.0002, 1e-7);
}

TEST(Eq1, MinBufferBits) {
  // B_min = le + rho * f_max.
  EXPECT_DOUBLE_EQ(min_buffer_bits(4, 0.0002, 115'000.0), 4.0 + 23.0);
  EXPECT_DOUBLE_EQ(min_buffer_bits(4, 0.0, 2076.0), 4.0);
}

TEST(Eq3, MaxBufferBits) {
  // B_max = f_min - 1: "less than the smallest frame".
  EXPECT_EQ(max_buffer_bits(shortest_frame_bits()), 27);
  EXPECT_EQ(max_buffer_bits(1), 0);
}

TEST(Eq6, PaperWorkedExample115kBits) {
  // "f_max = (28 - 1 - 4)/(0.0002) = 115,000 bits"
  EXPECT_DOUBLE_EQ(max_frame_bits(28, 4, 0.0002), 115'000.0);
}

TEST(Eq6, LimitFarExceedsLargestTtpcFrame) {
  // "the longest allowable frame size of 115,000 bits is much larger than
  // the number of bits in the largest allowable frame [2076]".
  EXPECT_GT(max_frame_bits(28, 4, rho_from_ppm(100.0)),
            static_cast<double>(longest_frame_bits()));
}

TEST(Eq8, ProtocolIFrameAllowsThirtyPercentSkew) {
  // "rho = (28-1-4)/(76) = 0.3026..." -> 30.26%.
  EXPECT_NEAR(max_rho(28, 4, 76), 0.3026, 0.0001);
}

TEST(Eq9, MaximalXFrameAllowsOnePercentSkew) {
  // "rho = (28-1-4)/(2076) = 0.0111" -> 1.11%.
  EXPECT_NEAR(max_rho(28, 4, 2076), 0.0111, 0.0001);
}

TEST(Eq10, ClockRatioLimit) {
  // w_max/w_min = f_max / (f_max - f_min + 1 + le).
  EXPECT_DOUBLE_EQ(max_clock_ratio(2076, 28, 4), 2076.0 / (2076 - 28 + 1 + 4));
}

TEST(Eq10, PaperHighlightedPoint128Bits) {
  // "if the maximum and minimum frame size are both 128 bits the ratio ...
  // is f_max / 5 = 25" (with le = 4: denominator = 128-128+1+4 = 5).
  EXPECT_DOUBLE_EQ(max_clock_ratio(128, 128, 4), 128.0 / 5.0);
}

TEST(Eq10, EqualFramesLimitGovernedByLePlusOne) {
  // For f_min == f_max the denominator is 1 + le regardless of size.
  EXPECT_DOUBLE_EQ(max_clock_ratio(1000, 1000, 4), 200.0);
  EXPECT_DOUBLE_EQ(max_clock_ratio(10, 10, 4), 2.0);
}

TEST(Feasibility, TtpcDesignPointIsFeasible) {
  EXPECT_TRUE(design_feasible(28, 2076, 4, rho_from_ppm(100.0)));
}

TEST(Feasibility, EdgeOfFeasibilityAt115kBits) {
  EXPECT_TRUE(design_feasible(28, 115'000, 4, 0.0002));
  EXPECT_FALSE(design_feasible(28, 115'001, 4, 0.0002));
}

TEST(Feasibility, WideClockSkewKillsLongFrames) {
  // 2% skew: X-frames no longer fit behind a 27-bit buffer ceiling.
  EXPECT_FALSE(design_feasible(28, 2076, 4, 0.02));
  EXPECT_TRUE(design_feasible(28, 76, 4, 0.02));
}

// Exact-rational feasibility must agree with the double version across a
// grid of parameters, including points exactly on the boundary.
struct FeasCase {
  std::int64_t f_min;
  std::int64_t f_max;
  unsigned le;
  std::int64_t rho_num;
  std::int64_t rho_den;
};

class FeasibilityGrid : public ::testing::TestWithParam<FeasCase> {};

TEST_P(FeasibilityGrid, ExactAndDoubleAgree) {
  const auto& p = GetParam();
  util::Rational rho(p.rho_num, p.rho_den);
  EXPECT_EQ(design_feasible(p.f_min, p.f_max, p.le, rho.to_double()),
            design_feasible_exact(p.f_min, p.f_max, p.le, rho))
      << "f_min=" << p.f_min << " f_max=" << p.f_max;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FeasibilityGrid,
    ::testing::Values(FeasCase{28, 2076, 4, 2, 10'000},
                      FeasCase{28, 115'000, 4, 2, 10'000},  // exact boundary
                      FeasCase{28, 76, 4, 3026, 10'000},
                      FeasCase{28, 76, 4, 3027, 10'000},
                      FeasCase{128, 128, 4, 1, 2},
                      FeasCase{40, 2076, 4, 1, 100},
                      FeasCase{28, 28, 4, 0, 1},
                      FeasCase{76, 2076, 8, 1, 50}));

TEST(FrameCatalog, HeadlineNumbers) {
  EXPECT_EQ(shortest_frame_bits(), 28);
  EXPECT_EQ(cold_start_frame_bits(), 40);
  EXPECT_EQ(protocol_i_frame_bits(), 76);
  EXPECT_EQ(longest_frame_bits(), 2076);
  EXPECT_EQ(default_line_encoding_bits(), 4u);
}

TEST(FrameCatalog, HasFourEntriesOrderedBySize) {
  auto cat = frame_catalog();
  ASSERT_EQ(cat.size(), 4u);
  for (std::size_t i = 1; i < cat.size(); ++i) {
    EXPECT_LT(cat[i - 1].total_bits, cat[i].total_bits);
  }
  EXPECT_FALSE(cat[0].field_breakdown.empty());
}

}  // namespace
}  // namespace tta::analysis
