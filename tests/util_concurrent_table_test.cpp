#include "util/concurrent_state_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace tta::util {
namespace {

PackedState make_key(std::uint64_t n) {
  PackedState p;
  BitWriter w(p);
  w.write(n, 64);
  w.write(n ^ 0xDEADBEEF, 40);
  return p;
}

TEST(ConcurrentStateTable, InsertIfAbsentBasics) {
  ConcurrentStateTable<int> table(1024);
  auto a = table.insert(make_key(1), 10);
  EXPECT_TRUE(a.inserted);
  ASSERT_NE(a.slot, ConcurrentStateTable<int>::kNoSlot);
  auto b = table.insert(make_key(1), 99);
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(b.slot, a.slot);
  EXPECT_EQ(table.value_at(a.slot), 10);  // loser's value is discarded
  EXPECT_EQ(table.key_at(a.slot), make_key(1));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.occupied(a.slot));
}

TEST(ConcurrentStateTable, FindHitsAndMisses) {
  ConcurrentStateTable<int> table(1024);
  for (std::uint64_t i = 0; i < 100; ++i) {
    table.insert(make_key(i), static_cast<int>(i));
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    std::uint32_t slot = table.find(make_key(i));
    ASSERT_NE(slot, ConcurrentStateTable<int>::kNoSlot) << i;
    EXPECT_EQ(table.value_at(slot), static_cast<int>(i));
  }
  EXPECT_EQ(table.find(make_key(12345)), ConcurrentStateTable<int>::kNoSlot);
}

TEST(ConcurrentStateTable, SaturationIsReportedNotSilent) {
  // 64 slots -> max_load = 48 entries; the 49th insert must report kNoSlot
  // rather than degrade or overwrite.
  ConcurrentStateTable<int> table(64);
  std::size_t accepted = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    if (table.insert(make_key(i), 0).slot !=
        ConcurrentStateTable<int>::kNoSlot) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, table.max_load());
  EXPECT_LT(table.max_load(), table.capacity());
  // Already-present keys are still found after saturation.
  EXPECT_NE(table.insert(make_key(0), 0).slot,
            ConcurrentStateTable<int>::kNoSlot);
}

TEST(ConcurrentStateTable, RebuildGrowsAndRemaps) {
  ConcurrentStateTable<int> table(64);
  std::vector<std::uint32_t> slots;
  for (std::uint64_t i = 0; i < 48; ++i) {
    slots.push_back(table.insert(make_key(i), static_cast<int>(i)).slot);
  }
  std::vector<std::uint32_t> remap = table.rebuild(256);
  EXPECT_EQ(table.capacity(), 256u);
  EXPECT_EQ(table.size(), 48u);
  for (std::uint64_t i = 0; i < 48; ++i) {
    std::uint32_t moved = remap[slots[i]];
    ASSERT_NE(moved, ConcurrentStateTable<int>::kNoSlot);
    EXPECT_EQ(table.key_at(moved), make_key(i));
    EXPECT_EQ(table.value_at(moved), static_cast<int>(i));
    EXPECT_EQ(table.find(make_key(i)), moved);
  }
}

TEST(ConcurrentStateTable, RebuildDropsSelectedEntries) {
  ConcurrentStateTable<int> table(256);
  std::vector<std::uint32_t> slots;
  for (std::uint64_t i = 0; i < 100; ++i) {
    slots.push_back(table.insert(make_key(i), static_cast<int>(i)).slot);
  }
  std::vector<std::uint32_t> remap =
      table.rebuild(256, [](const int& v) { return v % 2 == 1; });
  EXPECT_EQ(table.size(), 50u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (i % 2 == 1) {
      EXPECT_EQ(remap[slots[i]], ConcurrentStateTable<int>::kNoSlot);
      EXPECT_EQ(table.find(make_key(i)), ConcurrentStateTable<int>::kNoSlot);
    } else {
      EXPECT_EQ(table.find(make_key(i)), remap[slots[i]]);
    }
  }
}

TEST(ConcurrentStateTable, SaturationRecoversAfterRebuild) {
  // The checker's growth path: saturate, rebuild bigger, retry the refused
  // inserts, verify everything already stored survived.
  ConcurrentStateTable<int> table(64);
  std::vector<std::uint64_t> refused;
  for (std::uint64_t i = 0; i < 200; ++i) {
    if (table.insert(make_key(i), static_cast<int>(i)).slot ==
        ConcurrentStateTable<int>::kNoSlot) {
      refused.push_back(i);
    }
  }
  ASSERT_FALSE(refused.empty());
  table.rebuild(1024);
  for (std::uint64_t i : refused) {
    EXPECT_TRUE(table.insert(make_key(i), static_cast<int>(i)).inserted)
        << i;
  }
  EXPECT_EQ(table.size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    std::uint32_t slot = table.find(make_key(i));
    ASSERT_NE(slot, ConcurrentStateTable<int>::kNoSlot) << i;
    EXPECT_EQ(table.value_at(slot), static_cast<int>(i));
  }
}

TEST(ConcurrentStateTable, MemoizedHashTokenMatchesPlainCalls) {
  // The 3-arg insert/find with a hash() token must behave exactly like the
  // hashing overloads (the BFS engines hash once per successor and pass
  // the token through).
  ConcurrentStateTable<int> table(256);
  const auto hashed = table.hash(make_key(42));
  auto a = table.insert(make_key(42), 1, hashed);
  EXPECT_TRUE(a.inserted);
  auto b = table.insert(make_key(42), 2);
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(b.slot, a.slot);
  EXPECT_EQ(table.find(make_key(42), hashed), a.slot);
  EXPECT_EQ(table.find(make_key(42)), a.slot);
}

TEST(ConcurrentStateTable, RebuildCountsHashRecomputes) {
  // The flat layout stores no hash, so every rebuild re-hashes each kept
  // entry — that is the recompute cost CheckStats::hash_recomputes
  // surfaces (and the compact backend's stored quotients avoid).
  ConcurrentStateTable<int> table(256);
  for (std::uint64_t i = 0; i < 100; ++i) {
    table.insert(make_key(i), static_cast<int>(i));
  }
  EXPECT_EQ(table.hash_recomputes(), 0u);
  table.rebuild(1024);
  EXPECT_EQ(table.hash_recomputes(), 100u);
  table.rebuild(1024, [](const int& v) { return v >= 50; });
  EXPECT_EQ(table.hash_recomputes(), 150u);  // only kept entries re-hash
}

TEST(ConcurrentStateTable, RacingInsertersAgreeOnOneWinnerPerKey) {
  // Many threads hammer the same small key set; exactly one insert() per
  // key may report inserted == true, and all threads must observe the same
  // slot for a given key. Run under TSan (TTA_SANITIZE=thread) this is the
  // core publication-race check.
  constexpr std::uint64_t kKeys = 512;
  constexpr unsigned kThreads = 8;
  ConcurrentStateTable<std::uint32_t> table(4096);

  std::vector<std::vector<std::uint32_t>> slot_of(
      kThreads, std::vector<std::uint32_t>(kKeys));
  std::vector<std::uint64_t> wins(kThreads, 0);
  ThreadPool pool(kThreads);
  pool.run_tasks(kThreads, [&](std::size_t t) {
    // Each thread visits the keys in a different order.
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      std::uint64_t k = (i * 37 + t * 101) % kKeys;
      auto r = table.insert(make_key(k), static_cast<std::uint32_t>(k));
      ASSERT_NE(r.slot, ConcurrentStateTable<std::uint32_t>::kNoSlot);
      slot_of[t][k] = r.slot;
      wins[t] += r.inserted;
    }
  });

  EXPECT_EQ(table.size(), kKeys);
  std::uint64_t total_wins = 0;
  for (std::uint64_t w : wins) total_wins += w;
  EXPECT_EQ(total_wins, kKeys);  // exactly one winner per key
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    for (unsigned t = 1; t < kThreads; ++t) {
      ASSERT_EQ(slot_of[t][k], slot_of[0][k]) << "key " << k;
    }
    EXPECT_EQ(table.value_at(slot_of[0][k]), static_cast<std::uint32_t>(k));
  }
}

TEST(ConcurrentStateTable, HashSpreadsPackedStatesAcrossBuckets) {
  // Packed protocol states differ in few, low bits; the splitmix avalanche
  // must still spread them. Balls-into-bins: 65536 sequential-ish keys into
  // 65536 buckets has an expected max bucket depth around ln n / ln ln n
  // (~10); a max of 24+ would indicate hash clustering that linear probing
  // would amplify badly.
  constexpr std::size_t kBuckets = 1u << 16;
  std::vector<std::uint32_t> depth(kBuckets, 0);
  std::uint32_t worst = 0;
  for (std::uint64_t i = 0; i < kBuckets; ++i) {
    std::size_t h = hash_value(make_key(i)) & (kBuckets - 1);
    worst = std::max(worst, ++depth[h]);
  }
  EXPECT_LE(worst, 24u);
  // No catastrophic emptiness either: at least half the buckets are hit
  // (uniform expectation is 1 - 1/e ~ 63%).
  std::size_t used = 0;
  for (std::uint32_t d : depth) used += d != 0;
  EXPECT_GT(used, kBuckets / 2);
}

}  // namespace
}  // namespace tta::util
