#include "guardian/authority.h"

#include <gtest/gtest.h>

namespace tta::guardian {
namespace {

TEST(Authority, CapabilityLatticeIsMonotone) {
  // Each level adds capabilities and never removes one.
  auto caps = [](Authority a) {
    return std::tuple(can_block(a), can_shift_small(a), can_reshape_signal(a),
                      can_analyze_semantics(a), can_buffer_frames(a));
  };
  auto count = [&](Authority a) {
    auto [b, s, r, sem, buf] = caps(a);
    return int(b) + int(s) + int(r) + int(sem) + int(buf);
  };
  EXPECT_LT(count(Authority::kPassive), count(Authority::kTimeWindows));
  EXPECT_LT(count(Authority::kTimeWindows), count(Authority::kSmallShifting));
  EXPECT_LT(count(Authority::kSmallShifting), count(Authority::kFullShifting));
}

TEST(Authority, PassiveHasNoAuthority) {
  EXPECT_FALSE(can_block(Authority::kPassive));
  EXPECT_FALSE(can_shift_small(Authority::kPassive));
  EXPECT_FALSE(can_reshape_signal(Authority::kPassive));
  EXPECT_FALSE(can_analyze_semantics(Authority::kPassive));
  EXPECT_FALSE(can_buffer_frames(Authority::kPassive));
}

TEST(Authority, OnlyFullShiftingBuffersFrames) {
  EXPECT_FALSE(can_buffer_frames(Authority::kPassive));
  EXPECT_FALSE(can_buffer_frames(Authority::kTimeWindows));
  EXPECT_FALSE(can_buffer_frames(Authority::kSmallShifting));
  EXPECT_TRUE(can_buffer_frames(Authority::kFullShifting));
}

TEST(Authority, OutOfSlotFaultRequiresBuffering) {
  // "The out_of_slot fault occurs only if the couplers are configured for
  // full time shifting. All other faults may be caused by any
  // configuration."
  for (Authority a : kAllAuthorities) {
    EXPECT_TRUE(fault_possible(a, CouplerFault::kNone));
    EXPECT_TRUE(fault_possible(a, CouplerFault::kSilence));
    EXPECT_TRUE(fault_possible(a, CouplerFault::kBadFrame));
    EXPECT_EQ(fault_possible(a, CouplerFault::kOutOfSlot),
              a == Authority::kFullShifting);
  }
}

TEST(Authority, Names) {
  EXPECT_STREQ(to_string(Authority::kPassive), "passive");
  EXPECT_STREQ(to_string(Authority::kTimeWindows), "time_windows");
  EXPECT_STREQ(to_string(Authority::kSmallShifting), "small_shifting");
  EXPECT_STREQ(to_string(Authority::kFullShifting), "full_shifting");
  EXPECT_STREQ(to_string(CouplerFault::kOutOfSlot), "out_of_slot");
}

}  // namespace
}  // namespace tta::guardian
