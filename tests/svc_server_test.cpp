// svc::Server contract tests (tests/svc_server_test.cpp): the in-process
// face of the event-driven tta_verifyd. Covers the ServerConfig argv
// round trip the smokes and the chaos harness build on, a wire-level
// request/response round trip against a live in-process server, the
// deterministic state-budget quota rejection, and accept-path backoff
// surviving injected descriptor exhaustion (the sock.accept fail point).
// The end-to-end phases — fairness spreads, drain-on-disconnect, SIGTERM
// metrics — live in tools/verifyd_smoke.cpp against the real binary.
#include "svc/server.h"

#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "svc/wire.h"
#include "util/fail_point.h"
#include "util/socket.h"

namespace tta::svc {
namespace {

using tta::util::LineConn;
using tta::util::Socket;

/// Runs an in-process server on its own thread; stops and joins on scope
/// exit so a failing assertion never leaves the run() thread dangling.
class ServerRunner {
 public:
  explicit ServerRunner(ServerConfig config) : server_(std::move(config)) {
    std::string error;
    started_ = server_.start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) thread_ = std::thread([this] { server_.run(); });
  }
  ~ServerRunner() {
    if (thread_.joinable()) {
      server_.request_stop();
      thread_.join();
    }
  }
  bool started() const { return started_; }
  Server& server() { return server_; }

 private:
  Server server_;
  bool started_ = false;
  std::thread thread_;
};

/// One request -> one response row on a fresh connection.
bool exchange(std::uint16_t port, const std::string& request,
              std::string* response, int timeout_ms = 60'000) {
  std::string error;
  Socket sock = Socket::connect_to("127.0.0.1", port, 5'000, &error);
  if (!sock.valid()) {
    ADD_FAILURE() << "connect failed: " << error;
    return false;
  }
  LineConn conn(std::move(sock));
  if (conn.write_line(request, 5'000) != LineConn::Io::kOk) return false;
  return conn.read_line(response, timeout_ms) == LineConn::Io::kOk;
}

ServerConfig quiet_config() {
  ServerConfig config;
  config.port = 0;
  config.service.workers = 1;
  config.service.cache_capacity = 0;
  return config;
}

TEST(ServerConfig, FromArgsToArgsRoundTrips) {
  const char* argv[] = {
      "tta_verifyd",  // argv[0] is skipped, as in main()
      "--port=0",          "--workers=3",
      "--cache=7",         "--retries=2",
      "--drain-timeout-ms=1234",
      "--tenant=alpha:3:4:500000",
      "--tenant=beta:1:2",
      "--tenant-default=2:8",
  };
  ServerConfig config;
  std::string error;
  ASSERT_TRUE(config.from_args(static_cast<int>(std::size(argv)), argv,
                               &error))
      << error;
  EXPECT_EQ(config.service.workers, 3u);
  EXPECT_EQ(config.service.cache_capacity, 7u);
  EXPECT_EQ(config.service.retry.max_attempts, 3u);  // 1 + 2 retries
  EXPECT_EQ(config.drain_timeout_ms, 1234u);
  ASSERT_EQ(config.tenants.size(), 2u);
  EXPECT_EQ(config.tenants[0].name, "alpha");
  EXPECT_EQ(config.tenants[0].weight, 3u);
  EXPECT_EQ(config.tenants[0].max_in_flight, 4u);
  EXPECT_EQ(config.tenants[0].max_state_budget, 500'000u);
  EXPECT_EQ(config.tenants[1].name, "beta");
  EXPECT_EQ(config.tenants[1].max_state_budget, 0u);
  EXPECT_EQ(config.default_quota.weight, 2u);
  EXPECT_EQ(config.default_quota.max_in_flight, 8u);

  // to_args() must re-parse to the identical configuration.
  const std::vector<std::string> args = config.to_args();
  std::vector<const char*> reparse_argv = {"tta_verifyd"};
  for (const std::string& arg : args) reparse_argv.push_back(arg.c_str());
  ServerConfig reparsed;
  ASSERT_TRUE(reparsed.from_args(static_cast<int>(reparse_argv.size()),
                                 reparse_argv.data(), &error))
      << error;
  EXPECT_EQ(reparsed.to_args(), args);
  EXPECT_EQ(reparsed.service.workers, config.service.workers);
  EXPECT_EQ(reparsed.service.retry.max_attempts,
            config.service.retry.max_attempts);
  ASSERT_EQ(reparsed.tenants.size(), config.tenants.size());
  EXPECT_EQ(reparsed.tenants[0].max_state_budget,
            config.tenants[0].max_state_budget);
  EXPECT_EQ(reparsed.default_quota.max_in_flight,
            config.default_quota.max_in_flight);
}

TEST(ServerConfig, RejectsUnknownFlagsAndMalformedQuotas) {
  ServerConfig config;
  std::string error;
  const char* unknown[] = {"tta_verifyd", "--verbose"};
  EXPECT_FALSE(config.from_args(2, unknown, &error));
  EXPECT_FALSE(error.empty());

  const char* bad_weight[] = {"tta_verifyd", "--tenant=alpha:0"};
  EXPECT_FALSE(config.from_args(2, bad_weight, &error));

  const char* bad_tail[] = {"tta_verifyd", "--tenant=alpha:1:x"};
  EXPECT_FALSE(config.from_args(2, bad_tail, &error));

  const char* no_name[] = {"tta_verifyd", "--tenant=:1"};
  EXPECT_FALSE(config.from_args(2, no_name, &error));
}

TEST(Server, ServesAWireRoundTripInProcess) {
  ServerRunner runner(quiet_config());
  ASSERT_TRUE(runner.started());

  const std::string request = decorate_request_line(
      R"({"authority": "passive", "property": "safety"})", 0, "rt-1");
  std::string response;
  ASSERT_TRUE(exchange(runner.server().port(), request, &response));
  EXPECT_NE(response.find("\"id\":\"rt-1\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"verdict\":\"HOLDS\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"rejected\":0"), std::string::npos) << response;
  EXPECT_EQ(runner.server().metrics().net_connections.load(), 1u);
  EXPECT_EQ(runner.server().metrics().net_malformed.load(), 0u);
}

// The state-budget quota is checked against the request's declared bound
// (max_states), so rejection is deterministic — no race against how fast
// the worker drains the queue, unlike the in-flight count.
TEST(Server, StateBudgetCeilingRejectsDeterministically) {
  ServerConfig config = quiet_config();
  config.tenants.push_back(TenantQuota{"capped", 1, 0, /*budget=*/1'000'000});
  ServerRunner runner(config);
  ASSERT_TRUE(runner.started());
  const std::uint16_t port = runner.server().port();

  // Default max_states (50M) blows the 1M-state budget: explicit
  // rejection row, not a dropped line and not a served job.
  const std::string over = decorate_request_line(
      R"({"authority": "passive", "property": "safety"})", 0, "big",
      "capped");
  std::string response;
  ASSERT_TRUE(exchange(port, over, &response));
  EXPECT_NE(response.find("\"id\":\"big\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"rejected\":1"), std::string::npos) << response;
  EXPECT_EQ(runner.server().metrics().net_quota_rejected.load(), 1u);

  // A job that declares a bound inside the budget (and generous enough
  // for passive/n4 to close) is served normally — the rejection above
  // must not have leaked any reserved budget.
  const std::string within = decorate_request_line(
      R"({"authority": "passive", "property": "safety", "max_states": 500000})",
      0, "small", "capped");
  ASSERT_TRUE(exchange(port, within, &response));
  EXPECT_NE(response.find("\"id\":\"small\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"verdict\":\"HOLDS\""), std::string::npos)
      << response;
  EXPECT_EQ(runner.server().metrics().net_quota_rejected.load(), 1u);
}

// Injected EMFILE on the first two accept attempts: the connection waits
// in the listen backlog while the listener backs off (muted in the event
// loop), and the third attempt serves it. The client only sees latency.
TEST(Server, AcceptBackoffRetriesAfterInjectedExhaustion) {
  auto& points = util::FailPoints::instance();
  std::string error;
  ASSERT_TRUE(points.arm("sock.accept=error:hits(1,2)", &error)) << error;
  struct Disarm {
    ~Disarm() { util::FailPoints::instance().disarm("sock.accept"); }
  } disarm;  // even a failing assertion must not leak into later tests

  {
    ServerConfig config = quiet_config();
    config.accept_backoff = util::BackoffPolicy{5, 2.0, 50};
    ServerRunner runner(config);
    ASSERT_TRUE(runner.started());

    const std::string request = decorate_request_line(
        R"({"authority": "passive", "property": "safety"})", 0, "patient");
    std::string response;
    ASSERT_TRUE(exchange(runner.server().port(), request, &response));
    EXPECT_NE(response.find("\"id\":\"patient\""), std::string::npos)
        << response;
    EXPECT_NE(response.find("\"verdict\":"), std::string::npos) << response;
    EXPECT_GE(runner.server().metrics().net_accept_errors.load(), 2u);
    EXPECT_EQ(runner.server().metrics().net_connections.load(), 1u);
  }
}

}  // namespace
}  // namespace tta::svc
