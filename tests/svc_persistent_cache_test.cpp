// Crash-safety of the on-disk result store: results survive "restarts"
// (new PersistentCache instances over the same directory), truncated and
// bit-flipped journals recover everything before the damage with the
// damage counted in svc::Metrics, traces replay exactly, and compaction
// keeps the journal bounded without losing entries.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mc/model.h"
#include "svc/metrics.h"
#include "svc/persistent_cache.h"
#include "svc/service.h"
#include "util/fail_point.h"

namespace tta::svc {
namespace {

std::string test_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = std::filesystem::path(testing::TempDir()) /
                              "tta_pcache" / info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

JobSpec spec_for(guardian::Authority a, Property p,
                 std::uint64_t max_states = 50'000'000) {
  JobSpec spec;
  spec.model.authority = a;
  spec.property = p;
  spec.max_states = max_states;
  return spec;
}

/// A fabricated conclusive result (no trace, so no model replay needed).
JobResult holds_result(const JobSpec& spec, std::uint64_t states) {
  JobResult r;
  r.digest = spec.digest();
  r.property = spec.property;
  r.verdict = mc::Verdict::kHolds;
  r.stats.states_explored = states;
  r.stats.transitions = states * 9;
  r.stats.max_depth = 40;
  r.stats.seconds = 0.25;
  return r;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

TEST(PersistentCache, ResultsSurviveRestart) {
  const std::string dir = test_dir();
  const JobSpec spec =
      spec_for(guardian::Authority::kPassive, Property::kNoIntegratedNodeFreezes);
  {
    PersistentCache cache(PersistentCacheConfig{dir, 1024});
    cache.insert(spec, holds_result(spec, 110'956));
    EXPECT_EQ(cache.size(), 1u);
  }
  Metrics metrics;
  PersistentCache reopened(PersistentCacheConfig{dir, 1024}, &metrics);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.recovery().entries, 1u);
  EXPECT_EQ(metrics.persistent_recovered.load(), 1u);

  JobResult out;
  ASSERT_TRUE(reopened.lookup(spec, &out));
  EXPECT_TRUE(out.from_cache);
  EXPECT_TRUE(out.from_persistent);
  EXPECT_EQ(out.verdict, mc::Verdict::kHolds);
  EXPECT_EQ(out.stats.states_explored, 110'956u);
  EXPECT_EQ(out.digest, spec.digest());
}

TEST(PersistentCache, InconclusiveAndDivergenceAreNeverStored) {
  const std::string dir = test_dir();
  PersistentCache cache(PersistentCacheConfig{dir, 1024});
  const JobSpec spec =
      spec_for(guardian::Authority::kPassive, Property::kNoIntegratedNodeFreezes);
  JobResult r = holds_result(spec, 10);
  r.verdict = mc::Verdict::kInconclusive;
  cache.insert(spec, r);
  r.verdict = mc::Verdict::kEngineDivergence;
  cache.insert(spec, r);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PersistentCache, LookupBindsToTheQueryNotJustTheDigest) {
  const std::string dir = test_dir();
  PersistentCache cache(PersistentCacheConfig{dir, 1024});
  const JobSpec stored =
      spec_for(guardian::Authority::kPassive, Property::kNoIntegratedNodeFreezes);
  cache.insert(stored, holds_result(stored, 42));

  JobResult out;
  JobSpec other = stored;
  other.max_states = 12'345;  // different budget => different query
  EXPECT_FALSE(cache.lookup(other, &out));
  EXPECT_TRUE(cache.lookup(stored, &out));
}

TEST(PersistentCache, TruncatedJournalTailRecoversPrefixAndCountsDamage) {
  const std::string dir = test_dir();
  std::string journal;
  std::vector<JobSpec> specs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    specs.push_back(spec_for(guardian::Authority::kPassive,
                             Property::kNoIntegratedNodeFreezes,
                             1'000 + i));
  }
  {
    PersistentCache cache(PersistentCacheConfig{dir, 1024});
    journal = cache.journal_path();
    for (const JobSpec& s : specs) cache.insert(s, holds_result(s, 7));
  }
  // Tear the last record, as a SIGKILL mid-append would.
  auto data = read_file(journal);
  data.resize(data.size() - 3);
  write_file(journal, data);

  Metrics metrics;
  PersistentCache reopened(PersistentCacheConfig{dir, 1024}, &metrics);
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.recovery().truncated_records, 1u);
  EXPECT_GT(reopened.recovery().quarantined_bytes, 0u);
  EXPECT_EQ(metrics.persistent_truncated_records.load(), 1u);
  EXPECT_GT(metrics.persistent_quarantined_bytes.load(), 0u);

  JobResult out;
  EXPECT_TRUE(reopened.lookup(specs[0], &out));
  EXPECT_TRUE(reopened.lookup(specs[2], &out));
  EXPECT_FALSE(reopened.lookup(specs[3], &out));  // the torn one

  // The quarantined tail was physically truncated, so re-inserting the
  // lost record makes the journal whole again.
  reopened.insert(specs[3], holds_result(specs[3], 7));
  Metrics metrics2;
  PersistentCache third(PersistentCacheConfig{dir, 1024}, &metrics2);
  EXPECT_EQ(third.size(), 4u);
  EXPECT_EQ(metrics2.persistent_truncated_records.load(), 0u);
}

TEST(PersistentCache, BitFlippedRecordIsQuarantinedNotACrash) {
  const std::string dir = test_dir();
  std::string journal;
  std::vector<JobSpec> specs;
  for (std::uint64_t i = 0; i < 3; ++i) {
    specs.push_back(spec_for(guardian::Authority::kPassive,
                             Property::kNoIntegratedNodeFreezes,
                             2'000 + i));
  }
  {
    PersistentCache cache(PersistentCacheConfig{dir, 1024});
    journal = cache.journal_path();
    for (const JobSpec& s : specs) cache.insert(s, holds_result(s, 5));
  }
  auto data = read_file(journal);
  data[data.size() / 2] ^= 0x08;  // middle of the second record
  write_file(journal, data);

  Metrics metrics;
  PersistentCache reopened(PersistentCacheConfig{dir, 1024}, &metrics);
  EXPECT_LT(reopened.size(), 3u);
  EXPECT_EQ(reopened.recovery().corrupt_records, 1u);
  EXPECT_EQ(metrics.persistent_corrupt_records.load(), 1u);
  EXPECT_GT(metrics.persistent_quarantined_bytes.load(), 0u);
  JobResult out;
  EXPECT_TRUE(reopened.lookup(specs[0], &out));  // before the damage
}

TEST(PersistentCache, EmptySnapshotFileIsHarmless) {
  const std::string dir = test_dir();
  const JobSpec spec =
      spec_for(guardian::Authority::kPassive, Property::kNoIntegratedNodeFreezes);
  {
    PersistentCache cache(PersistentCacheConfig{dir, 1024});
    write_file(cache.snapshot_path(), {});  // zero-length snapshot
    cache.insert(spec, holds_result(spec, 3));
  }
  Metrics metrics;
  PersistentCache reopened(PersistentCacheConfig{dir, 1024}, &metrics);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(metrics.persistent_corrupt_records.load(), 0u);
  EXPECT_EQ(metrics.persistent_truncated_records.load(), 0u);
}

TEST(PersistentCache, CompactionMovesEntriesToSnapshotAndTruncatesJournal) {
  const std::string dir = test_dir();
  Metrics metrics;
  PersistentCache cache(PersistentCacheConfig{dir, 1024}, &metrics);
  std::vector<JobSpec> specs;
  for (std::uint64_t i = 0; i < 8; ++i) {
    specs.push_back(spec_for(guardian::Authority::kPassive,
                             Property::kNoIntegratedNodeFreezes,
                             3'000 + i));
    cache.insert(specs.back(), holds_result(specs.back(), i));
  }
  cache.compact();
  EXPECT_EQ(metrics.persistent_compactions.load(), 1u);
  EXPECT_GT(std::filesystem::file_size(cache.snapshot_path()), 0u);
  EXPECT_EQ(std::filesystem::file_size(cache.journal_path()), 0u);

  Metrics metrics2;
  PersistentCache reopened(PersistentCacheConfig{dir, 1024}, &metrics2);
  EXPECT_EQ(reopened.size(), 8u);
  JobResult out;
  for (const JobSpec& s : specs) EXPECT_TRUE(reopened.lookup(s, &out));
}

TEST(PersistentCache, AutomaticCompactionAfterConfiguredAppends) {
  const std::string dir = test_dir();
  Metrics metrics;
  PersistentCache cache(PersistentCacheConfig{dir, /*compact_after=*/4},
                        &metrics);
  for (std::uint64_t i = 0; i < 9; ++i) {
    const JobSpec s = spec_for(guardian::Authority::kPassive,
                               Property::kNoIntegratedNodeFreezes, 4'000 + i);
    cache.insert(s, holds_result(s, i));
  }
  EXPECT_GE(metrics.persistent_compactions.load(), 2u);
  PersistentCache reopened(PersistentCacheConfig{dir, 4});
  EXPECT_EQ(reopened.size(), 9u);
}

TEST(PersistentCache, TraceRecordsReplayToTheSameCounterexample) {
  // Run a real violated query once, persist it, reopen, and compare the
  // replayed trace state-for-state against the engine's original.
  const std::string dir = test_dir();
  JobSpec spec = spec_for(guardian::Authority::kFullShifting,
                          Property::kNoIntegratedNodeFreezes);
  spec.model.max_out_of_slot_errors = 1;
  spec.engine = EngineChoice::kSerial;

  VerificationService service{ServiceConfig{}};
  const JobResult original = service.run(spec);
  ASSERT_EQ(original.verdict, mc::Verdict::kViolated);
  ASSERT_FALSE(original.trace.empty());

  {
    PersistentCache cache(PersistentCacheConfig{dir, 1024});
    cache.insert(spec, original);
  }
  PersistentCache reopened(PersistentCacheConfig{dir, 1024});
  JobResult replayed;
  ASSERT_TRUE(reopened.lookup(spec, &replayed));
  EXPECT_EQ(replayed.verdict, mc::Verdict::kViolated);
  EXPECT_EQ(replayed.stats.states_explored, original.stats.states_explored);
  ASSERT_EQ(replayed.trace.size(), original.trace.size());

  mc::TtpcStarModel model(spec.model);
  for (std::size_t i = 0; i < original.trace.size(); ++i) {
    EXPECT_EQ(model.pack(replayed.trace[i].before),
              model.pack(original.trace[i].before))
        << i;
    EXPECT_EQ(model.pack(replayed.trace[i].after),
              model.pack(original.trace[i].after))
        << i;
  }
  // The replayed trace must still demonstrate the violation.
  auto violation = mc::no_integrated_node_freezes();
  const mc::TraceStep& last = replayed.trace.back();
  EXPECT_TRUE(violation(last.before, last.after));
}

/// Fail-point injection into the persistence path (journal + compaction).
/// Disarms on exit so the plain suites sharing this process stay clean.
class PersistentCacheFaultTest : public testing::Test {
 protected:
  void TearDown() override { util::FailPoints::instance().disarm_all(); }

  void arm(const char* config) {
    std::string error;
    ASSERT_TRUE(util::FailPoints::instance().arm(config, &error)) << error;
  }
};

TEST_F(PersistentCacheFaultTest, EnospcAppendIsCountedAndRetriedByCompaction) {
  const std::string dir = test_dir();
  Metrics metrics;
  PersistentCache cache(PersistentCacheConfig{dir, 1024}, &metrics);
  const JobSpec spec = spec_for(guardian::Authority::kPassive,
                                Property::kNoIntegratedNodeFreezes);

  // The journal append fails once (ENOSPC); insert must not lose the
  // entry — it counts the error and compacts eagerly, which lands the
  // record in the snapshot instead.
  arm("journal.append.enospc=error:hits(1,1)");
  cache.insert(spec, holds_result(spec, 4'242));
  EXPECT_GE(metrics.persistent_io_errors.load(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  JobResult out;
  ASSERT_TRUE(cache.lookup(spec, &out));
  EXPECT_EQ(out.stats.states_explored, 4'242u);

  // And the entry is durable: a reopen recovers it from disk.
  Metrics metrics2;
  PersistentCache reopened(PersistentCacheConfig{dir, 1024}, &metrics2);
  EXPECT_EQ(reopened.size(), 1u);
  ASSERT_TRUE(reopened.lookup(spec, &out));
  EXPECT_TRUE(out.from_persistent);
}

TEST_F(PersistentCacheFaultTest, FsyncFailureMidCompactionKeepsOldState) {
  const std::string dir = test_dir();
  const JobSpec a = spec_for(guardian::Authority::kPassive,
                             Property::kNoIntegratedNodeFreezes, 1'000);
  const JobSpec b = spec_for(guardian::Authority::kTimeWindows,
                             Property::kNoIntegratedNodeFreezes, 2'000);
  {
    Metrics metrics;
    PersistentCache cache(PersistentCacheConfig{dir, 1024}, &metrics);
    cache.insert(a, holds_result(a, 1));
    cache.insert(b, holds_result(b, 2));

    // The snapshot fsync fails mid-compaction: the old snapshot + journal
    // stay authoritative, the failure is counted, and every entry is
    // still served — no data moved, none lost.
    arm("journal.sync=error");
    cache.compact();
    util::FailPoints::instance().disarm_all();
    EXPECT_GE(metrics.persistent_io_errors.load(), 1u);
    JobResult out;
    EXPECT_TRUE(cache.lookup(a, &out));
    EXPECT_TRUE(cache.lookup(b, &out));
  }

  // A reopen after the failed compaction recovers both entries from the
  // untouched journal, damage-free.
  Metrics metrics2;
  PersistentCache reopened(PersistentCacheConfig{dir, 1024}, &metrics2);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_EQ(reopened.recovery().corrupt_records, 0u);
  EXPECT_EQ(reopened.recovery().truncated_records, 0u);

  // The next clean compaction succeeds and publishes the snapshot.
  reopened.compact();
  EXPECT_GT(std::filesystem::file_size(reopened.snapshot_path()), 0u);
}

TEST_F(PersistentCacheFaultTest, RenameFailureMidCompactionKeepsOldState) {
  const std::string dir = test_dir();
  const JobSpec spec = spec_for(guardian::Authority::kPassive,
                                Property::kNoIntegratedNodeFreezes);
  {
    Metrics metrics;
    PersistentCache cache(PersistentCacheConfig{dir, 1024}, &metrics);
    cache.insert(spec, holds_result(spec, 7));

    // The atomic publish (tmp -> snapshot rename) fails: counted, tmp
    // removed, old state authoritative.
    arm("cache.compact.rename=error:hits(1,1)");
    cache.compact();
    EXPECT_GE(metrics.persistent_io_errors.load(), 1u);
    EXPECT_FALSE(std::filesystem::exists(cache.snapshot_path() + ".tmp"));
    JobResult out;
    EXPECT_TRUE(cache.lookup(spec, &out));
  }

  Metrics metrics2;
  PersistentCache reopened(PersistentCacheConfig{dir, 1024}, &metrics2);
  EXPECT_EQ(reopened.size(), 1u);
}

TEST_F(PersistentCacheFaultTest, TornJournalAppendRecoversThePrefix) {
  const std::string dir = test_dir();
  const JobSpec a = spec_for(guardian::Authority::kPassive,
                             Property::kNoIntegratedNodeFreezes, 1'000);
  const JobSpec b = spec_for(guardian::Authority::kTimeWindows,
                             Property::kNoIntegratedNodeFreezes, 2'000);
  {
    Metrics metrics;
    PersistentCache cache(PersistentCacheConfig{dir, 1024}, &metrics);
    cache.insert(a, holds_result(a, 1));
    // The journal append for `b` tears 9 bytes in (simulated crash).
    // The insert path reacts by compacting eagerly — which is exactly
    // what wins durability back for `b` — so arm the rename fault too,
    // keeping the compaction from rescuing the record: the torn tail
    // must actually reach the next recovery scan.
    arm("journal.append.torn=short-io(9):hits(1,1);"
        "cache.compact.rename=error");
    cache.insert(b, holds_result(b, 2));
    EXPECT_GE(metrics.persistent_io_errors.load(), 1u);
  }
  util::FailPoints::instance().disarm_all();

  // Recovery: `a` survives, the torn frame for `b` is quarantined and
  // counted — never a crash.
  Metrics metrics;
  PersistentCache reopened(PersistentCacheConfig{dir, 1024}, &metrics);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.recovery().truncated_records, 1u);
  EXPECT_GT(reopened.recovery().quarantined_bytes, 0u);
  JobResult out;
  EXPECT_TRUE(reopened.lookup(a, &out));
  EXPECT_FALSE(reopened.lookup(b, &out));
  EXPECT_GE(metrics.persistent_truncated_records.load(), 1u);
}

}  // namespace
}  // namespace tta::svc
