#include "mc/checker.h"

#include <gtest/gtest.h>

namespace tta::mc {
namespace {

ModelConfig config(guardian::Authority a, unsigned max_oos = 7) {
  ModelConfig cfg;
  cfg.authority = a;
  cfg.max_out_of_slot_errors = max_oos;
  return cfg;
}

bool all_active(const TtpcStarModel& model, const WorldState& w) {
  for (std::size_t i = 0; i < model.num_nodes(); ++i) {
    if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
  }
  return true;
}

TEST(Checker, StartupIsReachable) {
  // Sanity for the whole model: the cluster can reach all-active.
  TtpcStarModel model(config(guardian::Authority::kPassive));
  Checker checker(model);
  auto res = checker.find_state(
      [&](const WorldState& w) { return all_active(model, w); });
  EXPECT_FALSE(res.holds());  // reachable
  ASSERT_FALSE(res.trace.empty());
  EXPECT_TRUE(all_active(model, res.trace.back().after));
  EXPECT_TRUE(res.stats.exhausted);
}

TEST(Checker, WitnessTraceIsConnected) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  Checker checker(model);
  auto res = checker.find_state(
      [&](const WorldState& w) { return all_active(model, w); });
  ASSERT_FALSE(res.trace.empty());
  EXPECT_EQ(res.trace.front().before, model.initial());
  for (std::size_t i = 1; i < res.trace.size(); ++i) {
    EXPECT_EQ(res.trace[i - 1].after, res.trace[i].before) << "gap at " << i;
  }
}

TEST(Checker, GoalAtDepthZeroNeedsNoTrace) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  Checker checker(model);
  auto res = checker.find_state([](const WorldState&) { return true; });
  EXPECT_FALSE(res.holds());
  EXPECT_TRUE(res.trace.empty());
}

TEST(Checker, UnreachableGoalIsExhausted) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  Checker checker(model);
  // No node ever enters download in this model.
  auto res = checker.find_state([](const WorldState& w) {
    return w.nodes[0].state == ttpc::CtrlState::kDownload;
  });
  EXPECT_TRUE(res.holds());
  EXPECT_TRUE(res.stats.exhausted);
  EXPECT_GT(res.stats.states_explored, 1000u);
}

TEST(Checker, StateBudgetStopsSearchUnexhausted) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  Checker checker(model);
  auto res = checker.find_state(
      [](const WorldState& w) {
        return w.nodes[0].state == ttpc::CtrlState::kDownload;
      },
      /*max_states=*/500);
  EXPECT_FALSE(res.holds());          // a budget bail is not "unreachable"
  EXPECT_EQ(res.verdict, Verdict::kInconclusive);
  EXPECT_FALSE(res.stats.exhausted);
}

TEST(Checker, CounterexampleEndsWithTheViolation) {
  TtpcStarModel model(config(guardian::Authority::kFullShifting, 1));
  Checker checker(model);
  auto res = checker.check(no_integrated_node_freezes());
  ASSERT_FALSE(res.holds());
  ASSERT_FALSE(res.trace.empty());
  const TraceStep& last = res.trace.back();
  bool violation = false;
  for (std::size_t i = 0; i < model.num_nodes(); ++i) {
    if (ttpc::is_integrated(last.before.nodes[i].state) &&
        last.after.nodes[i].state == ttpc::CtrlState::kFreeze) {
      violation = true;
    }
  }
  EXPECT_TRUE(violation);
}

TEST(Checker, CounterexampleStartsAtInitialState) {
  TtpcStarModel model(config(guardian::Authority::kFullShifting, 1));
  Checker checker(model);
  auto res = checker.check(no_integrated_node_freezes());
  ASSERT_FALSE(res.trace.empty());
  EXPECT_EQ(res.trace.front().before, model.initial());
}

TEST(Checker, BfsTraceIsMinimal) {
  // No strictly shorter counterexample exists: re-running with a depth cap
  // below the found length must find nothing. We approximate by checking
  // that every prefix of the trace is violation-free.
  TtpcStarModel model(config(guardian::Authority::kFullShifting, 1));
  Checker checker(model);
  auto res = checker.check(no_integrated_node_freezes());
  ASSERT_FALSE(res.holds());
  auto violation = no_integrated_node_freezes();
  for (std::size_t i = 0; i + 1 < res.trace.size(); ++i) {
    EXPECT_FALSE(violation(res.trace[i].before, res.trace[i].after))
        << "violation already at step " << i;
  }
}

TEST(Checker, MoreOosErrorsGiveShorterOrEqualTraces) {
  // The paper: the unconstrained shortest trace uses four out-of-slot
  // errors; limiting to one yields a slightly longer trace.
  TtpcStarModel unconstrained(config(guardian::Authority::kFullShifting, 7));
  TtpcStarModel limited(config(guardian::Authority::kFullShifting, 1));
  auto res_u = Checker(unconstrained).check(no_integrated_node_freezes());
  auto res_l = Checker(limited).check(no_integrated_node_freezes());
  ASSERT_FALSE(res_u.holds());
  ASSERT_FALSE(res_l.holds());
  EXPECT_LE(res_u.trace.size(), res_l.trace.size());
}

TEST(Checker, StatsArePopulated) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  Checker checker(model);
  auto res = checker.check(no_integrated_node_freezes());
  EXPECT_TRUE(res.holds());
  EXPECT_GT(res.stats.states_explored, 10'000u);
  EXPECT_GT(res.stats.transitions, res.stats.states_explored);
  EXPECT_GT(res.stats.max_depth, 10u);
  EXPECT_GE(res.stats.seconds, 0.0);
}

TEST(Property, DetectsOnlyIntegratedFreezes) {
  auto violation = no_integrated_node_freezes();
  WorldState before, after;
  // listen -> freeze is not a violation (the node never integrated).
  before.nodes[0].state = ttpc::CtrlState::kListen;
  after.nodes[0].state = ttpc::CtrlState::kFreeze;
  EXPECT_FALSE(violation(before, after));
  // active -> freeze is.
  before.nodes[1].state = ttpc::CtrlState::kActive;
  after.nodes[1].state = ttpc::CtrlState::kFreeze;
  EXPECT_TRUE(violation(before, after));
  // passive -> freeze is.
  WorldState b2, a2;
  b2.nodes[3].state = ttpc::CtrlState::kPassive;
  a2.nodes[3].state = ttpc::CtrlState::kFreeze;
  EXPECT_TRUE(violation(b2, a2));
  // active staying active is not.
  WorldState b3, a3;
  b3.nodes[0].state = ttpc::CtrlState::kActive;
  a3.nodes[0].state = ttpc::CtrlState::kActive;
  EXPECT_FALSE(violation(b3, a3));
}

}  // namespace
}  // namespace tta::mc
