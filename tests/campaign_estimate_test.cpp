// Known-answer pins for campaign::wilson_estimate, concentrating on the
// degenerate edges a fault campaign actually hits: zero failures after a
// long clean streak (failures == 0), the always-failing configuration
// (failures == trials), and the one-trial campaign (trials == 1). Every
// edge must honor the documented invariant 0 <= ci_low <= p_hat <=
// ci_high <= 1 exactly — no NaN out of the sqrt radicand, no negative
// half-width, and ppm-scaled bounds inside [0, 1e6].
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "campaign/estimate.h"

namespace tta::campaign {
namespace {

// Closed forms at the edges, for z2 = kDefaultZ^2 (~3.841459):
//   failures == 0:      ci_low = 0,            ci_high = z2 / (n + z2)
//   failures == trials: ci_low = n / (n + z2), ci_high = 1
// (Wilson center +- spread collapses exactly because p(1-p) = 0.)
constexpr double kZ2 = kDefaultZ * kDefaultZ;

void expect_invariant(const Estimate& est) {
  EXPECT_FALSE(std::isnan(est.ci_low));
  EXPECT_FALSE(std::isnan(est.ci_high));
  EXPECT_GE(est.ci_low, 0.0);
  EXPECT_LE(est.ci_low, est.p_hat);
  EXPECT_LE(est.p_hat, est.ci_high);
  EXPECT_LE(est.ci_high, 1.0);
  EXPECT_GE(est.half_width(), 0.0);
}

TEST(WilsonEstimate, EmptyCampaignIsVacuous) {
  const Estimate est = wilson_estimate(0, 0);
  EXPECT_EQ(est.p_hat, 0.0);
  EXPECT_EQ(est.ci_low, 0.0);
  EXPECT_EQ(est.ci_high, 1.0);
  expect_invariant(est);
}

TEST(WilsonEstimate, ZeroFailuresPinsLowerBoundAtExactZero) {
  for (std::uint64_t trials : {1ull, 10ull, 100ull, 1'000'000ull}) {
    const Estimate est = wilson_estimate(0, trials);
    EXPECT_EQ(est.p_hat, 0.0) << trials;
    EXPECT_EQ(est.ci_low, 0.0) << trials;  // exact, not "tiny negative"
    const double n = static_cast<double>(trials);
    EXPECT_NEAR(est.ci_high, kZ2 / (n + kZ2), 1e-12) << trials;
    expect_invariant(est);
  }
  // The 100-trial clean streak, pinned numerically: the rule-of-three
  // neighborhood a campaign report actually quotes.
  EXPECT_NEAR(wilson_estimate(0, 100).ci_high, 0.0369935, 5e-8);
}

TEST(WilsonEstimate, AllFailuresPinsUpperBoundAtExactOne) {
  for (std::uint64_t trials : {1ull, 10ull, 100ull, 1'000'000ull}) {
    const Estimate est = wilson_estimate(trials, trials);
    EXPECT_EQ(est.p_hat, 1.0) << trials;
    EXPECT_EQ(est.ci_high, 1.0) << trials;  // exact
    const double n = static_cast<double>(trials);
    EXPECT_NEAR(est.ci_low, n / (n + kZ2), 1e-12) << trials;
    expect_invariant(est);
  }
}

TEST(WilsonEstimate, SingleTrialBothWays) {
  const Estimate clean = wilson_estimate(0, 1);
  EXPECT_EQ(clean.ci_low, 0.0);
  EXPECT_NEAR(clean.ci_high, kZ2 / (1.0 + kZ2), 1e-12);  // ~0.793451
  expect_invariant(clean);

  const Estimate failed = wilson_estimate(1, 1);
  EXPECT_NEAR(failed.ci_low, 1.0 / (1.0 + kZ2), 1e-12);  // ~0.206549
  EXPECT_EQ(failed.ci_high, 1.0);
  expect_invariant(failed);
}

TEST(WilsonEstimate, InteriorKnownAnswer) {
  // 5 failures in 100 trials at 95%: the standard Wilson worked example.
  const Estimate est = wilson_estimate(5, 100);
  EXPECT_NEAR(est.p_hat, 0.05, 1e-12);
  EXPECT_NEAR(est.ci_low, 0.0215437, 5e-7);
  EXPECT_NEAR(est.ci_high, 0.1117505, 5e-7);
  expect_invariant(est);
}

TEST(WilsonEstimate, PpmScaledBoundsStayInRange) {
  // The campaign report multiplies by kPpmScale = 1e6; the edges must map
  // into [0, 1e6] with nothing to clamp downstream.
  for (const auto& [failures, trials] :
       {std::pair<std::uint64_t, std::uint64_t>{0, 1},
        {1, 1},
        {0, 50'000},
        {50'000, 50'000},
        {3, 7}}) {
    const Estimate est = wilson_estimate(failures, trials);
    expect_invariant(est);
    EXPECT_GE(est.ci_low * 1e6, 0.0);
    EXPECT_LE(est.ci_high * 1e6, 1e6);
  }
}

TEST(WilsonEstimate, InvariantSweep) {
  for (std::uint64_t trials = 1; trials <= 40; ++trials) {
    for (std::uint64_t failures = 0; failures <= trials; ++failures) {
      expect_invariant(wilson_estimate(failures, trials));
    }
  }
}

}  // namespace
}  // namespace tta::campaign
