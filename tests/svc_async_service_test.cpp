// The async session contract end-to-end: completion-order streaming,
// three-way next_for(), cancel-while-queued vs cancel-while-running,
// drain semantics, explicit admission rejection with digests, checkpoint-
// backed progress, a many-producer stress round, and the sync shim's
// equivalence to manual session use. Labeled `parallel` and `async` (the
// TSan job runs both).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/experiments.h"
#include "svc/async_service.h"
#include "svc/job_queue.h"
#include "svc/service.h"
#include "util/fail_point.h"

namespace tta::svc {
namespace {

std::string test_dir(const char* sub) {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = std::filesystem::path(testing::TempDir()) /
                              "tta_async" / info->name() / sub;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

JobSpec spec_for(guardian::Authority a, std::uint8_t nodes = 4) {
  JobSpec spec;
  spec.model.authority = a;
  spec.model.protocol.num_nodes = nodes;
  spec.model.protocol.num_slots = nodes;
  spec.property = Property::kNoIntegratedNodeFreezes;
  return spec;
}

/// Polls progress() until the job reports `state` (or a generous timeout;
/// the surrounding assertions then fail with the last observed state).
JobState wait_for_state(Session& session, const JobHandle& handle,
                        JobState state,
                        std::chrono::seconds timeout = std::chrono::seconds(60)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  JobState seen = JobState::kQueued;
  while (std::chrono::steady_clock::now() < deadline) {
    std::optional<JobProgress> progress = session.progress(handle);
    if (!progress) break;
    seen = progress->state;
    if (seen == state) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return seen;
}

TEST(AsyncSession, ResultsStreamInCompletionOrderNotSubmissionOrder) {
  ServiceConfig config;
  config.workers = 1;  // deterministic: one worker, cheapest-first queue
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  // The blocker occupies the single worker; only then are the expensive
  // and the cheap job submitted, so the worker's next pop must take the
  // cheap one even though the expensive one was submitted first.
  const JobHandle blocker =
      session->submit(spec_for(guardian::Authority::kPassive));
  ASSERT_EQ(wait_for_state(*session, blocker, JobState::kRunning),
            JobState::kRunning);
  const JobHandle expensive =
      session->submit(spec_for(guardian::Authority::kTimeWindows));
  const JobHandle cheap =
      session->submit(spec_for(guardian::Authority::kSmallShifting, 3));

  std::vector<std::uint64_t> completion_order;
  for (int i = 0; i < 3; ++i) {
    std::optional<StreamedResult> item = session->results().next();
    ASSERT_TRUE(item.has_value());
    EXPECT_FALSE(item->result.outcome.rejected);
    EXPECT_EQ(item->result.verdict, mc::Verdict::kHolds);
    completion_order.push_back(item->handle.sequence);
  }
  const std::vector<std::uint64_t> expected = {
      blocker.sequence, cheap.sequence, expensive.sequence};
  EXPECT_EQ(completion_order, expected);  // != submission order

  session->drain();
  EXPECT_TRUE(session->results().exhausted());
  EXPECT_EQ(service.metrics().results_streamed.load(), 3u);
  EXPECT_EQ(service.metrics().sessions_opened.load(), 1u);
}

TEST(AsyncSession, NextForReportsTimeoutItemAndEndAsDistinctStatuses) {
  AsyncService service;
  std::shared_ptr<Session> session = service.open_session();

  StreamedResult item;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(session->results().next_for(std::chrono::milliseconds(40), &item),
            util::PopStatus::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(35));
  EXPECT_FALSE(session->results().exhausted());  // timed out, not ended

  // The stream still works afterwards.
  const JobHandle h =
      session->submit(spec_for(guardian::Authority::kSmallShifting, 3));
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(session->results().next_for(std::chrono::minutes(5), &item),
            util::PopStatus::kItem);
  EXPECT_EQ(item.handle.sequence, h.sequence);

  // After drain the status is kEnded — no longer confusable with a
  // timeout, and atomic with the pop (no exhausted() race window).
  EXPECT_EQ(session->drain(), 0u);
  EXPECT_EQ(session->results().next_for(std::chrono::milliseconds(0), &item),
            util::PopStatus::kEnded);
  EXPECT_TRUE(session->results().exhausted());
}

TEST(AsyncSession, CancelWhileQueuedConcludesImmediately) {
  ServiceConfig config;
  config.workers = 1;
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  const JobHandle blocker =
      session->submit(spec_for(guardian::Authority::kPassive));
  ASSERT_EQ(wait_for_state(*session, blocker, JobState::kRunning),
            JobState::kRunning);
  const JobHandle queued =
      session->submit(spec_for(guardian::Authority::kTimeWindows));
  ASSERT_EQ(session->progress(queued)->state, JobState::kQueued);

  EXPECT_TRUE(session->cancel(queued));
  EXPECT_EQ(session->progress(queued)->state, JobState::kCancelled);
  EXPECT_FALSE(session->cancel(queued));  // already concluded

  // The cancelled conclusion is streamed ahead of the still-running
  // blocker — the worker never touches the job.
  std::optional<StreamedResult> first = session->results().next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->handle.sequence, queued.sequence);
  EXPECT_EQ(first->result.verdict, mc::Verdict::kInconclusive);
  EXPECT_TRUE(first->result.stats.cancelled);
  EXPECT_FALSE(first->result.stats.exhausted);

  std::optional<StreamedResult> second = session->results().next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->handle.sequence, blocker.sequence);
  EXPECT_EQ(second->result.verdict, mc::Verdict::kHolds);
  session->drain();
  EXPECT_EQ(service.metrics().jobs_cancelled.load(), 1u);
}

TEST(AsyncSession, CancelWhileRunningTripsTheTokenAndReportsPartialStats) {
  ServiceConfig config;
  config.workers = 1;
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  // 5-node space: many seconds of work, so the cancel lands mid-search.
  const JobHandle running =
      session->submit(spec_for(guardian::Authority::kPassive, 5));
  ASSERT_EQ(wait_for_state(*session, running, JobState::kRunning),
            JobState::kRunning);
  EXPECT_TRUE(session->cancel(running));

  StreamedResult item;
  ASSERT_EQ(session->results().next_for(std::chrono::minutes(5), &item),
            util::PopStatus::kItem);
  EXPECT_EQ(item.handle.sequence, running.sequence);
  EXPECT_EQ(item.result.verdict, mc::Verdict::kInconclusive);
  EXPECT_TRUE(item.result.stats.cancelled);
  EXPECT_FALSE(item.result.stats.exhausted);
  EXPECT_EQ(session->progress(running)->state, JobState::kCancelled);
  session->drain();
}

TEST(AsyncSession, DrainRejectsQueuedJobsAndConcludesTheRunningOne) {
  ServiceConfig config;
  config.workers = 1;
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  const JobHandle blocker =
      session->submit(spec_for(guardian::Authority::kPassive));
  ASSERT_EQ(wait_for_state(*session, blocker, JobState::kRunning),
            JobState::kRunning);
  const JobHandle q1 =
      session->submit(spec_for(guardian::Authority::kTimeWindows));
  const JobHandle q2 =
      session->submit(spec_for(guardian::Authority::kSmallShifting));

  session->drain();  // rejects q1/q2, waits for the blocker, ends stream

  std::size_t rejected = 0, concluded = 0;
  for (;;) {
    std::optional<StreamedResult> item = session->results().next();
    if (!item) break;
    if (item->result.outcome.rejected) {
      ++rejected;
      EXPECT_TRUE(item->handle.sequence == q1.sequence ||
                  item->handle.sequence == q2.sequence);
      EXPECT_NE(item->result.digest, 0u);
    } else {
      ++concluded;
      EXPECT_EQ(item->handle.sequence, blocker.sequence);
      EXPECT_EQ(item->result.verdict, mc::Verdict::kHolds);
    }
  }
  EXPECT_EQ(rejected, 2u);
  EXPECT_EQ(concluded, 1u);
  EXPECT_TRUE(session->results().exhausted());
  EXPECT_EQ(service.metrics().drain_rejected.load(), 2u);

  // Submissions after drain are hard-rejected: invalid handle, digest set.
  const JobSpec late = spec_for(guardian::Authority::kPassive, 3);
  const JobHandle rejected_handle = session->submit(late);
  EXPECT_FALSE(rejected_handle.valid());
  EXPECT_EQ(rejected_handle.digest, late.digest());

  session->drain();  // idempotent
}

TEST(AsyncSession, AdmissionRejectionStreamsAnExplicitResultWithDigest) {
  ServiceConfig config;
  config.workers = 1;
  config.max_pending = 1;
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  const JobSpec admitted_spec = spec_for(guardian::Authority::kPassive, 3);
  const JobSpec rejected_spec = spec_for(guardian::Authority::kTimeWindows);
  const JobHandle admitted = session->submit(admitted_spec);
  const JobHandle rejected = session->submit(rejected_spec);  // over bound
  ASSERT_TRUE(admitted.valid());
  ASSERT_TRUE(rejected.valid());  // the rejection itself was buffered

  bool saw_rejection = false, saw_conclusion = false;
  for (int i = 0; i < 2; ++i) {
    std::optional<StreamedResult> item = session->results().next();
    ASSERT_TRUE(item.has_value());
    if (item->handle.sequence == rejected.sequence) {
      saw_rejection = true;
      EXPECT_TRUE(item->result.outcome.rejected);
      // The satellite bugfix end-to-end: the rejected job still reports
      // the digest of the spec it refused.
      EXPECT_EQ(item->result.digest, rejected_spec.digest());
      EXPECT_EQ(item->result.verdict, mc::Verdict::kInconclusive);
      EXPECT_EQ(item->result.stats.states_explored, 0u);
    } else {
      saw_conclusion = true;
      EXPECT_EQ(item->handle.sequence, admitted.sequence);
      EXPECT_FALSE(item->result.outcome.rejected);
    }
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_TRUE(saw_conclusion);
  EXPECT_EQ(service.metrics().jobs_rejected.load(), 1u);
  EXPECT_EQ(service.metrics().jobs_admitted.load(), 1u);
  session->drain();
}

TEST(AsyncSession, ProgressReportsBfsLevelFromTheCheckpointHeader) {
  ServiceConfig config;
  config.workers = 1;
  config.checkpoint_dir = test_dir("ckpt");
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  // Long 5-node run with per-level checkpoints: progress() should observe
  // an advisory BFS level once the first barrier is written.
  const JobHandle h =
      session->submit(spec_for(guardian::Authority::kPassive, 5));
  ASSERT_EQ(wait_for_state(*session, h, JobState::kRunning),
            JobState::kRunning);

  bool saw_level = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    std::optional<JobProgress> progress = session->progress(h);
    ASSERT_TRUE(progress.has_value());
    if (progress->state != JobState::kRunning) break;  // finished early
    EXPECT_EQ(progress->attempt, 1u);
    if (progress->has_bfs_level) {
      saw_level = true;
      EXPECT_GE(progress->bfs_level, 1u);
      EXPECT_GT(progress->checkpoint_states, 0u);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(saw_level);

  session->cancel(h);  // no need to finish the 5-node space
  StreamedResult item;
  EXPECT_EQ(session->results().next_for(std::chrono::minutes(5), &item),
            util::PopStatus::kItem);
  session->drain();
}

TEST(AsyncSession, ManyProducersEveryHandleAnsweredExactlyOnce) {
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 25;
  ServiceConfig config;
  config.workers = 4;
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  std::mutex mu;
  std::vector<JobHandle> handles;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        // Tiny budget: every job concludes (inconclusive) in microseconds,
        // and inconclusive results are never cached, so each one runs.
        JobSpec spec = spec_for(guardian::Authority::kPassive, 3);
        spec.max_states = 50 + s;  // distinct digests per submitter
        const JobHandle h = session->submit(spec);
        ASSERT_TRUE(h.valid());
        std::lock_guard<std::mutex> lock(mu);
        handles.push_back(h);
        if (i % 7 == 3) session->cancel(h);  // sprinkle cancellations
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  std::set<std::uint64_t> answered;
  for (int n = 0; n < kSubmitters * kPerSubmitter; ++n) {
    StreamedResult item;
    ASSERT_EQ(session->results().next_for(std::chrono::minutes(5), &item),
              util::PopStatus::kItem)
        << "after " << n << " results";
    EXPECT_TRUE(answered.insert(item.handle.sequence).second)
        << "duplicate result for sequence " << item.handle.sequence;
  }
  session->drain();
  EXPECT_TRUE(session->results().exhausted());

  std::set<std::uint64_t> submitted;
  for (const JobHandle& h : handles) submitted.insert(h.sequence);
  EXPECT_EQ(answered, submitted);
  EXPECT_EQ(session->open_jobs(), 0u);
}

TEST(AsyncSession, StalledConsumerAtTheOverflowBoundaryLosesNothing) {
  // Pins the satellite bugfix: with the consumer stalled, fill the result
  // stream to exactly its capacity (2x max_pending: max_pending concluded
  // results + max_pending buffered rejections) and check that no push was
  // dropped or even reported as an overflow — the 2x sizing and the
  // open-job gauge agree at the boundary.
  ServiceConfig config;
  config.workers = 1;
  config.max_pending = 2;  // stream capacity 4
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  const JobHandle a =
      session->submit(spec_for(guardian::Authority::kPassive, 3));
  const JobHandle b =
      session->submit(spec_for(guardian::Authority::kSmallShifting, 3));
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  // Both conclude with nobody consuming: 2 results sit buffered.
  ASSERT_EQ(wait_for_state(*session, a, JobState::kDone), JobState::kDone);
  ASSERT_EQ(wait_for_state(*session, b, JobState::kDone), JobState::kDone);

  // Two more submissions are rejected (open gauge at max_pending) and
  // their rejection notices fill the remaining two slots exactly.
  const JobHandle r1 =
      session->submit(spec_for(guardian::Authority::kTimeWindows));
  const JobHandle r2 =
      session->submit(spec_for(guardian::Authority::kFullShifting));
  ASSERT_TRUE(r1.valid());
  ASSERT_TRUE(r2.valid());

  // The fifth submission finds the stream saturated: hard rejection,
  // invalid handle, digest still reported.
  const JobSpec fifth = spec_for(guardian::Authority::kPassive, 5);
  const JobHandle hard = session->submit(fifth);
  EXPECT_FALSE(hard.valid());
  EXPECT_EQ(hard.digest, fifth.digest());

  // At exactly-full, nothing overflowed and nothing was lost.
  EXPECT_EQ(service.metrics().stream_overflows.load(), 0u);
  EXPECT_EQ(service.metrics().stream_lost.load(), 0u);

  std::size_t concluded = 0, rejected = 0;
  for (int i = 0; i < 4; ++i) {
    std::optional<StreamedResult> item = session->results().next();
    ASSERT_TRUE(item.has_value());
    item->result.outcome.rejected ? ++rejected : ++concluded;
  }
  EXPECT_EQ(concluded, 2u);
  EXPECT_EQ(rejected, 2u);
  EXPECT_EQ(session->drain(), 0u);  // no undeliverable results
  EXPECT_EQ(session->lost_results(), 0u);
}

TEST(AsyncSession, HigherPriorityOvertakesCheaperQueuedJobs) {
  ServiceConfig config;
  config.workers = 1;
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  // Occupy the single worker, then queue a cheap default-priority job and
  // an expensive high-priority one. Cheapest-first alone would run the
  // cheap job next; the priority band must win.
  const JobHandle blocker =
      session->submit(spec_for(guardian::Authority::kPassive));
  ASSERT_EQ(wait_for_state(*session, blocker, JobState::kRunning),
            JobState::kRunning);
  const JobHandle cheap =
      session->submit(spec_for(guardian::Authority::kSmallShifting, 3));
  const JobHandle urgent = session->submit(
      spec_for(guardian::Authority::kTimeWindows), /*priority=*/5);
  ASSERT_TRUE(cheap.valid());
  ASSERT_TRUE(urgent.valid());

  std::vector<std::uint64_t> completion_order;
  for (int i = 0; i < 3; ++i) {
    std::optional<StreamedResult> item = session->results().next();
    ASSERT_TRUE(item.has_value());
    completion_order.push_back(item->handle.sequence);
  }
  const std::vector<std::uint64_t> expected = {
      blocker.sequence, urgent.sequence, cheap.sequence};
  EXPECT_EQ(completion_order, expected);
  session->drain();
}

TEST(SyncShim, RunBatchMatchesManualSessionUseOnTheE1Grid) {
  const std::vector<JobSpec> jobs = core::feature_matrix_jobs();

  VerificationService shim;
  const std::vector<JobResult> via_shim = shim.run_batch(jobs);

  AsyncService async;
  std::shared_ptr<Session> session = async.open_session();
  std::vector<JobResult> via_session(jobs.size());
  std::vector<JobHandle> handles;
  handles.reserve(jobs.size());
  for (const JobSpec& spec : jobs) handles.push_back(session->submit(spec));
  for (std::size_t n = 0; n < jobs.size(); ++n) {
    std::optional<StreamedResult> item = session->results().next();
    ASSERT_TRUE(item.has_value());
    const auto it = std::find_if(
        handles.begin(), handles.end(), [&](const JobHandle& h) {
          return h.sequence == item->handle.sequence;
        });
    ASSERT_NE(it, handles.end());
    via_session[static_cast<std::size_t>(it - handles.begin())] =
        std::move(item->result);
  }
  session->drain();

  ASSERT_EQ(via_shim.size(), via_session.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(via_shim[i].verdict, via_session[i].verdict) << i;
    EXPECT_EQ(via_shim[i].digest, via_session[i].digest) << i;
    EXPECT_EQ(via_shim[i].stats.states_explored,
              via_session[i].stats.states_explored)
        << i;
    EXPECT_EQ(via_shim[i].stats.transitions,
              via_session[i].stats.transitions)
        << i;
    EXPECT_EQ(via_shim[i].stats.max_depth, via_session[i].stats.max_depth)
        << i;
    EXPECT_EQ(via_shim[i].trace.size(), via_session[i].trace.size()) << i;
    EXPECT_EQ(via_shim[i].outcome.attempts.size(),
              via_session[i].outcome.attempts.size())
        << i;
  }
  // The E1 pinned numbers hold through both paths.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].model.authority == guardian::Authority::kFullShifting) {
      EXPECT_EQ(via_shim[i].verdict, mc::Verdict::kViolated);
    } else {
      EXPECT_EQ(via_shim[i].stats.states_explored, 110'956u);
      EXPECT_EQ(via_shim[i].stats.transitions, 875'440u);
    }
  }
}

TEST(AsyncSession, SpuriousInconclusiveAttemptIsRetriedToConclusion) {
  // Fail point `svc.attempt`: the first attempt's conclusive verdict is
  // spoofed into kInconclusive — the retry loop must re-admit the job and
  // the second, unspoofed attempt concludes with the exact pinned result.
  // The spoofed non-answer must never have reached the cache.
  std::string error;
  ASSERT_TRUE(util::FailPoints::instance().arm("svc.attempt=error:hits(1,1)",
                                               &error))
      << error;

  ServiceConfig config;
  config.workers = 1;
  config.retry.max_attempts = 3;
  config.retry.backoff.initial_delay_ms = 1;
  config.retry.backoff.max_delay_ms = 4;
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  const JobHandle handle =
      session->submit(spec_for(guardian::Authority::kPassive));
  std::optional<StreamedResult> item = session->results().next();
  util::FailPoints::instance().disarm_all();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->handle.sequence, handle.sequence);

  const JobResult& result = item->result;
  EXPECT_EQ(result.verdict, mc::Verdict::kHolds);
  EXPECT_EQ(result.stats.states_explored, 110'956u);
  ASSERT_EQ(result.outcome.attempts.size(), 2u);
  EXPECT_EQ(result.outcome.attempts.front().verdict,
            mc::Verdict::kInconclusive);
  EXPECT_EQ(result.outcome.attempts.back().verdict, mc::Verdict::kHolds);
  EXPECT_FALSE(result.from_cache);  // the spoofed attempt was not cached
  EXPECT_GE(service.metrics().jobs_retried.load(), 1u);

  // A resubmit now hits the cache: only the conclusive answer was stored.
  const JobHandle again =
      session->submit(spec_for(guardian::Authority::kPassive));
  (void)again;
  std::optional<StreamedResult> cached = session->results().next();
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->result.from_cache);
  EXPECT_EQ(cached->result.verdict, mc::Verdict::kHolds);
}

// With one tenant the DRR rotation must be invisible: pops come out in
// the historical (priority desc, cost asc, admission order) order that
// every pre-tenant caller depends on.
TEST(JobQueueDrr, SingleTenantReducesToHistoricalOrder) {
  JobQueue queue(64);
  // sequence:   1          2          3          4          5
  // priority:   0          0          5          5          0
  // cost rank:  big        small      mid        big        mid
  queue.admit(spec_for(guardian::Authority::kPassive, 6), 0, 1, 0);
  queue.admit(spec_for(guardian::Authority::kPassive, 3), 0, 2, 0);
  queue.admit(spec_for(guardian::Authority::kPassive, 4), 0, 3, 5);
  queue.admit(spec_for(guardian::Authority::kPassive, 5), 0, 4, 5);
  queue.admit(spec_for(guardian::Authority::kPassive, 4), 0, 5, 0);

  std::vector<std::uint64_t> popped;
  while (std::optional<JobQueue::Entry> entry = queue.pop_next()) {
    popped.push_back(entry->sequence);
  }
  // Priority-5 band first (cheap n4 before n5), then priority 0 by cost.
  EXPECT_EQ(popped, (std::vector<std::uint64_t>{3, 4, 2, 5, 1}));
  EXPECT_EQ(queue.pending(), 0u);
}

// Two equal-weight tenants with identical-cost jobs in one band: deficit
// round-robin must keep the pop stream balanced — at no prefix may one
// tenant be more than one job ahead of the other.
TEST(JobQueueDrr, EqualWeightTenantsStayWithinOneJobOfEachOther) {
  JobQueue queue(64);
  const JobSpec spec = spec_for(guardian::Authority::kPassive);
  for (std::uint64_t i = 0; i < 3; ++i) {
    queue.admit(spec, 0, 10 + i, 0, /*tenant=*/1, /*weight=*/1);
    queue.admit(spec, 0, 20 + i, 0, /*tenant=*/2, /*weight=*/1);
  }

  int count[3] = {0, 0, 0};
  for (int pops = 0; pops < 6; ++pops) {
    std::optional<JobQueue::Entry> entry = queue.pop_next();
    ASSERT_TRUE(entry.has_value());
    ASSERT_TRUE(entry->tenant == 1 || entry->tenant == 2);
    ++count[entry->tenant];
    EXPECT_LE(std::abs(count[1] - count[2]), 1)
        << "unfair prefix after " << pops + 1 << " pops";
  }
  EXPECT_EQ(count[1], 3);
  EXPECT_EQ(count[2], 3);
  EXPECT_FALSE(queue.pop_next().has_value());
}

// A weight-2 tenant sharing a band with a weight-1 tenant (identical job
// costs) must receive exactly two pops for every one of its peer's, at
// every three-pop boundary.
TEST(JobQueueDrr, WeightsSkewShareProportionally) {
  JobQueue queue(64);
  const JobSpec spec = spec_for(guardian::Authority::kPassive);
  queue.admit(spec, 0, 100, 0, /*tenant=*/1, /*weight=*/2);
  queue.admit(spec, 0, 200, 0, /*tenant=*/2, /*weight=*/1);
  for (std::uint64_t i = 1; i < 6; ++i) {
    queue.admit(spec, 0, 100 + i, 0, /*tenant=*/1, /*weight=*/2);
  }
  for (std::uint64_t i = 1; i < 3; ++i) {
    queue.admit(spec, 0, 200 + i, 0, /*tenant=*/2, /*weight=*/1);
  }

  int heavy = 0;
  int light = 0;
  for (int pops = 1; pops <= 9; ++pops) {
    std::optional<JobQueue::Entry> entry = queue.pop_next();
    ASSERT_TRUE(entry.has_value());
    (entry->tenant == 1 ? heavy : light) += 1;
    if (pops % 3 == 0) {
      EXPECT_EQ(heavy, 2 * pops / 3) << "after " << pops << " pops";
      EXPECT_EQ(light, pops / 3) << "after " << pops << " pops";
    }
  }
  EXPECT_FALSE(queue.pop_next().has_value());
}

// The double-rounding hazard at the adaptive refill (job_queue.cpp): the
// quantum is computed as need = (cost - deficit) / weight and credited
// back as weight * need, and that divide-then-multiply can round to a
// hair under cost - deficit whenever the division is inexact. One refill
// must still make the argmin lane eligible (the pop may not stall or
// leak a negative deficit into later rounds). The 4-node passive spec
// costs exactly 111000, and 111000 / 11 * 11 rounds to a hair UNDER
// 111000 in IEEE doubles — asserted below as the precondition — so with
// weight-11 lanes the very first refill (deficit 0) hits the hazard, and
// the fairness envelope must hold anyway across enough cycles for any
// rounding drift to compound.
TEST(JobQueueDrr, InexactWeightDivisionStillPopsAfterOneRefill) {
  JobQueue queue(128);
  const JobSpec spec = spec_for(guardian::Authority::kPassive, 4);
  const double cost = spec.estimated_cost();
  ASSERT_LT(cost / 11.0 * 11.0, cost)
      << "precondition lost: pick a cost/weight pair whose "
         "divide-then-multiply rounds down";
  for (std::uint64_t i = 0; i < 24; ++i) {
    queue.admit(spec, 0, 100 + i, 0, /*tenant=*/1, /*weight=*/11);
    queue.admit(spec, 0, 200 + i, 0, /*tenant=*/2, /*weight=*/11);
  }

  int count[3] = {0, 0, 0};
  for (int pops = 0; pops < 48; ++pops) {
    std::optional<JobQueue::Entry> entry = queue.pop_next();
    ASSERT_TRUE(entry.has_value()) << "refill failed to restore "
                                      "eligibility after " << pops << " pops";
    ASSERT_TRUE(entry->tenant == 1 || entry->tenant == 2);
    ++count[entry->tenant];
    EXPECT_LE(std::abs(count[1] - count[2]), 1)
        << "rounding drift broke fairness after " << pops + 1 << " pops";
  }
  EXPECT_EQ(count[1], 24);
  EXPECT_EQ(count[2], 24);
  EXPECT_EQ(queue.pending(), 0u);
}

}  // namespace
}  // namespace tta::svc
