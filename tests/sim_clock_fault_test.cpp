// WALDEN-style clock-desynchronization faults and the single-channel
// cluster point — the two sim-layer extensions behind the campaign
// subsystem's fault dictionary and parameterized topology.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/cluster.h"
#include "sim/fault_injector.h"
#include "ttpc/types.h"

namespace tta::sim {
namespace {

ClusterConfig base_config() {
  ClusterConfig cfg;
  cfg.protocol.num_nodes = 4;
  cfg.protocol.num_slots = 4;
  return cfg;
}

TEST(ClockFaults, TransmitAttrsSweepAndJump) {
  Cluster cluster(base_config(), FaultInjector{});
  ASSERT_TRUE(cluster.run_until_all_healthy_active(200));

  // Find a slot in the next round where node 1 actually transmits, then
  // re-evaluate that transmission under each clock fault.
  const std::uint64_t start = cluster.now();
  for (std::uint64_t s = start; s < start + 4; ++s) {
    const SimFrame nominal =
        cluster.node(1).transmit(NodeFaultMode::kNone, s);
    if (nominal.frame.kind == ttpc::FrameKind::kNone) continue;

    // Drift: a deterministic sawtooth over the receivers' window spread —
    // 920..1020 ns as the step advances, never the nominal timing.
    const SimFrame drift =
        cluster.node(1).transmit(NodeFaultMode::kClockDrift, s);
    EXPECT_EQ(drift.frame.kind, nominal.frame.kind);
    EXPECT_DOUBLE_EQ(drift.attrs.timing_offset_ns,
                     920.0 + 10.0 * static_cast<double>(s % 11));

    // Jump: a fixed step change far outside every acceptance window.
    const SimFrame jump =
        cluster.node(1).transmit(NodeFaultMode::kClockJump, s);
    EXPECT_EQ(jump.frame.kind, nominal.frame.kind);
    EXPECT_DOUBLE_EQ(jump.attrs.timing_offset_ns, 1500.0);
    return;
  }
  FAIL() << "node 1 never transmitted in a full round";
}

TEST(ClockFaults, DriftSweepsAcrossTheToleranceSpread) {
  // The drift sawtooth (920..1020 ns) crosses the per-node acceptance
  // windows (spread 1000 - 15i ns), so as the offset sweeps, receivers
  // genuinely disagree about frame validity in some slots — the
  // slightly-off-specification signature in the time domain. On the bus
  // there is no central guardian to reshape the marginal timing (the
  // star's defense), so the disagreement reaches the receivers.
  ClusterConfig cfg = base_config();
  cfg.topology = Topology::kBus;
  FaultInjector fi;
  fi.add(NodeFaultWindow{2, NodeFaultMode::kClockDrift, 0, UINT64_MAX});
  Cluster cluster(cfg, std::move(fi));
  cluster.run(200);
  EXPECT_GT(cluster.metrics().sos_disagreements, 0u);
}

TEST(ClockFaults, JumpedClockIsRejectedByEveryReceiver) {
  // 1500 ns sits outside every window, so all receivers agree the traffic
  // is invalid: no disagreement, and the healthy majority still starts up.
  ClusterConfig cfg = base_config();
  FaultInjector fi;
  fi.add(NodeFaultWindow{2, NodeFaultMode::kClockJump, 0, UINT64_MAX});
  Cluster cluster(cfg, std::move(fi));
  EXPECT_TRUE(cluster.run_until_all_healthy_active(400));
  EXPECT_EQ(cluster.healthy_clique_frozen(), 0u);
}

TEST(ClockFaults, Names) {
  EXPECT_STREQ(to_string(NodeFaultMode::kClockDrift), "clock_drift");
  EXPECT_STREQ(to_string(NodeFaultMode::kClockJump), "clock_jump");
}

TEST(SingleChannelCluster, StartsUpWithoutFaults) {
  // Removing channel redundancy alone costs nothing in a fault-free run.
  ClusterConfig cfg = base_config();
  cfg.num_channels = 1;
  Cluster cluster(cfg, FaultInjector{});
  EXPECT_TRUE(cluster.run_until_all_healthy_active(200));
}

TEST(SingleChannelCluster, ChannelSilenceIsUnmasked) {
  // The same silence fault that a dual-channel cluster masks via the
  // replica is fatal once the cluster has only one channel — the
  // degraded-redundancy axis the campaign subsystem sweeps.
  FaultInjector silence;
  silence.add(
      CouplerFaultWindow{0, guardian::CouplerFault::kSilence, 0, UINT64_MAX});

  ClusterConfig dual = base_config();
  Cluster masked(dual, silence);
  EXPECT_TRUE(masked.run_until_all_healthy_active(200));

  ClusterConfig single = base_config();
  single.num_channels = 1;
  Cluster exposed(single, silence);
  EXPECT_FALSE(exposed.run_until_all_healthy_active(200));
}

}  // namespace
}  // namespace tta::sim
