// Checkpoint/resume for both BFS engines: an interrupted run resumed from
// its last level barrier must reach a bit-identical result — same verdict,
// same states/transitions/max_depth, same counterexample — and a damaged,
// mismatched, or missing checkpoint must fail softly (fresh start), never
// crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mc/checker.h"
#include "mc/checkpoint.h"
#include "mc/parallel_checker.h"
#include "util/compact_state_table.h"
#include "util/fail_point.h"

namespace tta::mc {
namespace {

ModelConfig config(guardian::Authority a, std::uint8_t nodes = 4) {
  ModelConfig cfg;
  cfg.authority = a;
  cfg.protocol.num_nodes = nodes;
  cfg.protocol.num_slots = nodes;
  return cfg;
}

std::string test_path(const std::string& name) {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = std::filesystem::path(testing::TempDir()) /
                              "tta_checkpoint" / info->name();
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

CheckpointData sample_data() {
  CheckpointData data;
  data.mode = CheckpointData::Mode::kFindState;
  data.next_depth = 7;
  data.transitions = 12'345;
  data.dedup_skips = 99;
  for (std::uint64_t i = 0; i < 5; ++i) {
    CheckpointEntry e;
    e.key.words[0] = i + 1;
    e.key.words[3] = ~i;
    e.parent.words[0] = i;  // entry 0's "parent" is itself below
    e.choice = static_cast<std::uint32_t>(i * 3);
    e.depth = static_cast<std::uint32_t>(i);
    if (i == 0) {
      e.parent = e.key;
      e.flags = CheckpointEntry::kRootFlag;
    }
    data.visited.push_back(e);
  }
  data.frontier.push_back(data.visited[3].key);
  data.frontier.push_back(data.visited[4].key);
  return data;
}

TEST(CheckpointFile, SaveLoadRoundTripPreservesEverything) {
  CheckpointConfig cfg{test_path("run.ckpt"), /*binding=*/0xABCDEF01u, 1};
  const CheckpointData data = sample_data();
  ASSERT_TRUE(save_checkpoint(cfg, data));

  CheckpointData loaded;
  ASSERT_TRUE(load_checkpoint(cfg, &loaded, CheckpointData::Mode::kFindState));
  EXPECT_EQ(loaded.mode, data.mode);
  EXPECT_EQ(loaded.next_depth, data.next_depth);
  EXPECT_EQ(loaded.transitions, data.transitions);
  EXPECT_EQ(loaded.dedup_skips, data.dedup_skips);
  ASSERT_EQ(loaded.visited.size(), data.visited.size());
  for (std::size_t i = 0; i < data.visited.size(); ++i) {
    EXPECT_EQ(loaded.visited[i].key, data.visited[i].key) << i;
    EXPECT_EQ(loaded.visited[i].parent, data.visited[i].parent) << i;
    EXPECT_EQ(loaded.visited[i].choice, data.visited[i].choice) << i;
    EXPECT_EQ(loaded.visited[i].depth, data.visited[i].depth) << i;
    EXPECT_EQ(loaded.visited[i].flags, data.visited[i].flags) << i;
  }
  ASSERT_EQ(loaded.frontier.size(), data.frontier.size());
  EXPECT_EQ(loaded.frontier[0], data.frontier[0]);
  EXPECT_EQ(loaded.frontier[1], data.frontier[1]);
}

TEST(CheckpointFile, LoadFailsSoftlyOnEveryDamageMode) {
  CheckpointConfig cfg{test_path("run.ckpt"), 42, 1};
  CheckpointData loaded;

  // Missing file.
  EXPECT_FALSE(
      load_checkpoint(cfg, &loaded, CheckpointData::Mode::kSafetyCheck));

  const CheckpointData data = sample_data();
  ASSERT_TRUE(save_checkpoint(cfg, data));

  // Wrong mode: a reachability wavefront must not resume a safety check.
  EXPECT_FALSE(
      load_checkpoint(cfg, &loaded, CheckpointData::Mode::kSafetyCheck));

  // Wrong binding: a checkpoint for a different query is ignored.
  CheckpointConfig other = cfg;
  other.binding = 43;
  EXPECT_FALSE(
      load_checkpoint(other, &loaded, CheckpointData::Mode::kFindState));

  // Bit flip anywhere trips the CRC trailer.
  const std::vector<std::uint8_t> intact = read_file(cfg.path);
  for (std::size_t at : {std::size_t{0}, intact.size() / 2}) {
    auto damaged = intact;
    damaged[at] ^= 0x40;
    write_file(cfg.path, damaged);
    EXPECT_FALSE(
        load_checkpoint(cfg, &loaded, CheckpointData::Mode::kFindState))
        << "flip at " << at;
  }

  // Torn tail (the crash the tmp+rename publication protects against, but
  // load must survive it anyway).
  auto torn = intact;
  torn.resize(torn.size() / 2);
  write_file(cfg.path, torn);
  EXPECT_FALSE(
      load_checkpoint(cfg, &loaded, CheckpointData::Mode::kFindState));

  // Zero-length file.
  write_file(cfg.path, {});
  EXPECT_FALSE(
      load_checkpoint(cfg, &loaded, CheckpointData::Mode::kFindState));

  // The intact bytes still load (the damage above never wrote through
  // save_checkpoint, so publication atomicity is not what saved us).
  write_file(cfg.path, intact);
  EXPECT_TRUE(
      load_checkpoint(cfg, &loaded, CheckpointData::Mode::kFindState));

  remove_checkpoint(cfg.path);
  EXPECT_FALSE(std::filesystem::exists(cfg.path));
  remove_checkpoint(cfg.path);  // idempotent on a missing file
}

TEST(CheckpointFile, PeekFailsSoftlyOnEveryDamageMode) {
  // peek_checkpoint reads only the fixed header — no CRC covers it — so
  // its own validation must reject everything short of a plausible
  // wavefront: missing and zero-length files, truncated headers (every
  // prefix shorter than the 65-byte v2 header), and structurally complete
  // headers whose visited/frontier counts are zero (a torn or zero-filled
  // write; a real wavefront always holds the root and one frontier state).
  CheckpointConfig cfg{test_path("peek.ckpt"), /*binding=*/42, 1};
  CheckpointPeek peek;

  // Missing file (the temp dir persists across runs, so clear residue).
  remove_checkpoint(cfg.path);
  EXPECT_FALSE(peek_checkpoint(cfg, &peek));

  const CheckpointData data = sample_data();
  ASSERT_TRUE(save_checkpoint(cfg, data));
  const std::vector<std::uint8_t> intact = read_file(cfg.path);

  // The intact file peeks, and reports the saved progress surface.
  ASSERT_TRUE(peek_checkpoint(cfg, &peek));
  EXPECT_EQ(peek.mode, CheckpointData::Mode::kFindState);
  EXPECT_EQ(peek.next_depth, 7u);
  EXPECT_EQ(peek.transitions, 12'345u);
  EXPECT_EQ(peek.visited, data.visited.size());
  EXPECT_EQ(peek.frontier, data.frontier.size());

  // Truncated headers: zero-length and every short prefix of the v2
  // header, including one byte shy of complete.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{1},
                                 std::size_t{8}, std::size_t{56},
                                 std::size_t{64}}) {
    auto torn = intact;
    torn.resize(keep);
    write_file(cfg.path, torn);
    EXPECT_FALSE(peek_checkpoint(cfg, &peek)) << "kept " << keep;
  }

  // Zeroed count fields in an otherwise complete header: the v2 layout
  // puts the visited count at bytes [49, 57) and the frontier count at
  // [57, 65). Either being zero is garbage — progress must report
  // "unknown" rather than display it.
  for (const std::size_t offset : {std::size_t{49}, std::size_t{57}}) {
    auto zeroed = intact;
    std::fill(zeroed.begin() + static_cast<std::ptrdiff_t>(offset),
              zeroed.begin() + static_cast<std::ptrdiff_t>(offset + 8), 0);
    write_file(cfg.path, zeroed);
    EXPECT_FALSE(peek_checkpoint(cfg, &peek)) << "zeroed at " << offset;
  }

  // Wrong binding on the intact bytes.
  write_file(cfg.path, intact);
  CheckpointConfig other = cfg;
  other.binding = 43;
  EXPECT_FALSE(peek_checkpoint(other, &peek));

  // And the intact file still peeks after all of the above.
  EXPECT_TRUE(peek_checkpoint(cfg, &peek));
  remove_checkpoint(cfg.path);
}

TEST(CheckpointVerdict, EngineDivergenceHasAName) {
  EXPECT_STREQ(to_string(Verdict::kEngineDivergence), "ENGINE_DIVERGENCE");
}

// Interrupt a safety check with a state budget (leaving checkpoints at
// every completed level), then resume with the full budget: the final
// result must be bit-identical to an uninterrupted run.
TEST(SerialResume, SafetyCheckResumesBitIdentical) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  const auto baseline = Checker(model).check(no_integrated_node_freezes());
  ASSERT_EQ(baseline.verdict, Verdict::kHolds);
  ASSERT_EQ(baseline.stats.states_explored, 110'956u);

  CheckpointConfig cfg{test_path("safety.ckpt"), 0xFEED, 1};
  auto partial = Checker(model).check(no_integrated_node_freezes(),
                                      /*max_states=*/20'000, nullptr, &cfg);
  ASSERT_EQ(partial.verdict, Verdict::kInconclusive);
  ASSERT_TRUE(std::filesystem::exists(cfg.path));

  auto resumed = Checker(model).check(no_integrated_node_freezes(),
                                      /*max_states=*/50'000'000, nullptr,
                                      &cfg);
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_EQ(resumed.verdict, baseline.verdict);
  EXPECT_EQ(resumed.stats.states_explored, baseline.stats.states_explored);
  EXPECT_EQ(resumed.stats.transitions, baseline.stats.transitions);
  EXPECT_EQ(resumed.stats.max_depth, baseline.stats.max_depth);
}

// The violated case additionally pins the counterexample: the resumed run
// must report the *same* minimal trace, which is the strongest evidence
// that the frontier order survived the round trip.
TEST(SerialResume, ViolatedTraceIsIdenticalAfterResume) {
  TtpcStarModel model(config(guardian::Authority::kFullShifting));
  const auto baseline = Checker(model).check(no_integrated_node_freezes());
  ASSERT_EQ(baseline.verdict, Verdict::kViolated);
  ASSERT_FALSE(baseline.trace.empty());

  CheckpointConfig cfg{test_path("violated.ckpt"), 0xBEEF, 1};
  auto partial = Checker(model).check(no_integrated_node_freezes(),
                                      /*max_states=*/10'000, nullptr, &cfg);
  ASSERT_EQ(partial.verdict, Verdict::kInconclusive);

  auto resumed = Checker(model).check(no_integrated_node_freezes(),
                                      /*max_states=*/50'000'000, nullptr,
                                      &cfg);
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_EQ(resumed.verdict, Verdict::kViolated);
  EXPECT_EQ(resumed.stats.states_explored, baseline.stats.states_explored);
  EXPECT_EQ(resumed.stats.transitions, baseline.stats.transitions);
  ASSERT_EQ(resumed.trace.size(), baseline.trace.size());
  for (std::size_t i = 0; i < baseline.trace.size(); ++i) {
    EXPECT_EQ(model.pack(resumed.trace[i].before),
              model.pack(baseline.trace[i].before))
        << i;
    EXPECT_EQ(model.pack(resumed.trace[i].after),
              model.pack(baseline.trace[i].after))
        << i;
  }
}

TEST(SerialResume, FindStateResumesToSameWitness) {
  TtpcStarModel model(config(guardian::Authority::kTimeWindows));
  const std::size_t n = model.num_nodes();
  Checker<TtpcStarModel>::Goal goal = [n](const WorldState& w) {
    for (std::size_t i = 0; i < n; ++i) {
      if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
    }
    return true;
  };
  const auto baseline = Checker(model).find_state(goal);
  ASSERT_EQ(baseline.verdict, Verdict::kViolated);  // goal reachable

  CheckpointConfig cfg{test_path("find.ckpt"), 0xF00D, 1};
  auto partial =
      Checker(model).find_state(goal, /*max_states=*/5'000, nullptr, &cfg);
  ASSERT_EQ(partial.verdict, Verdict::kInconclusive);

  auto resumed = Checker(model).find_state(goal, /*max_states=*/50'000'000,
                                           nullptr, &cfg);
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_EQ(resumed.verdict, baseline.verdict);
  EXPECT_EQ(resumed.stats.max_depth, baseline.stats.max_depth);
  ASSERT_EQ(resumed.trace.size(), baseline.trace.size());
  for (std::size_t i = 0; i < baseline.trace.size(); ++i) {
    EXPECT_EQ(model.pack(resumed.trace[i].after),
              model.pack(baseline.trace[i].after))
        << i;
  }
}

TEST(ParallelResume, SafetyCheckResumesBitIdentical) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  ParallelChecker baseline_checker(model, 4);
  const auto baseline =
      baseline_checker.check(no_integrated_node_freezes());
  ASSERT_EQ(baseline.verdict, Verdict::kHolds);

  CheckpointConfig cfg{test_path("psafety.ckpt"), 0xFEED, 1};
  ParallelChecker checker(model, 4);
  auto partial = checker.check(no_integrated_node_freezes(),
                               /*max_states=*/20'000, nullptr, &cfg);
  ASSERT_EQ(partial.verdict, Verdict::kInconclusive);
  ASSERT_TRUE(std::filesystem::exists(cfg.path));

  auto resumed = checker.check(no_integrated_node_freezes(),
                               /*max_states=*/50'000'000, nullptr, &cfg);
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_EQ(resumed.verdict, baseline.verdict);
  EXPECT_EQ(resumed.stats.states_explored, baseline.stats.states_explored);
  EXPECT_EQ(resumed.stats.transitions, baseline.stats.transitions);
  EXPECT_EQ(resumed.stats.max_depth, baseline.stats.max_depth);
}

TEST(ParallelResume, ViolatedTraceSurvivesEngineHandoff) {
  // The checkpoint format is engine-agnostic: a wavefront saved by the
  // serial engine resumes under the parallel engine (and vice versa) to
  // the same verdict and the same trace shape, because both engines honor
  // the serialized frontier order.
  TtpcStarModel model(config(guardian::Authority::kFullShifting));
  const auto baseline = Checker(model).check(no_integrated_node_freezes());
  ASSERT_EQ(baseline.verdict, Verdict::kViolated);

  CheckpointConfig cfg{test_path("handoff.ckpt"), 0xCAFE, 1};
  auto partial = Checker(model).check(no_integrated_node_freezes(),
                                      /*max_states=*/10'000, nullptr, &cfg);
  ASSERT_EQ(partial.verdict, Verdict::kInconclusive);

  ParallelChecker checker(model, 4);
  auto resumed = checker.check(no_integrated_node_freezes(),
                               /*max_states=*/50'000'000, nullptr, &cfg);
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_EQ(resumed.verdict, Verdict::kViolated);
  EXPECT_EQ(resumed.stats.states_explored, baseline.stats.states_explored);
  EXPECT_EQ(resumed.stats.max_depth, baseline.stats.max_depth);
  ASSERT_EQ(resumed.trace.size(), baseline.trace.size());
  for (std::size_t i = 0; i < baseline.trace.size(); ++i) {
    EXPECT_EQ(model.pack(resumed.trace[i].before),
              model.pack(baseline.trace[i].before))
        << i;
  }
}

/// Fail-point injection into checkpoint save/load. Disarms on exit so the
/// plain suites sharing this process stay clean.
class CheckpointFaultTest : public testing::Test {
 protected:
  void TearDown() override { util::FailPoints::instance().disarm_all(); }

  void arm(const std::string& config) {
    std::string error;
    ASSERT_TRUE(util::FailPoints::instance().arm(config, &error)) << error;
  }
};

TEST_F(CheckpointFaultTest, TornSaveAtEveryFrameBoundaryIsRejectedOnLoad) {
  // The file layout is: 65-byte v2 header, 73 bytes per visited entry,
  // 32 bytes per frontier state, 4-byte CRC trailer. Tear the write at
  // every frame boundary (plus inside the trailer): each torn file is
  // published (the injected tear models a crash that beat the atomic
  // rename), save reports failure, and load must reject the file — the
  // CRC trailer is either missing or computed over bytes that are gone.
  const CheckpointData data = sample_data();
  const std::uint64_t full =
      65 + 73 * data.visited.size() + 32 * data.frontier.size() + 4;

  std::vector<std::uint64_t> cuts = {65};
  for (std::size_t i = 1; i <= data.visited.size(); ++i) {
    cuts.push_back(65 + 73 * i);
  }
  for (std::size_t i = 1; i <= data.frontier.size(); ++i) {
    cuts.push_back(65 + 73 * data.visited.size() + 32 * i);
  }
  cuts.push_back(full - 4);  // everything but the CRC trailer
  cuts.push_back(full - 1);  // mid-trailer

  for (const std::uint64_t cut : cuts) {
    CheckpointConfig cfg{test_path("torn_" + std::to_string(cut) + ".ckpt"),
                         0xABCDEF01u, 1};
    arm("ckpt.save.torn=short-io(" + std::to_string(cut) + "):hits(1,1)");
    EXPECT_FALSE(save_checkpoint(cfg, data)) << "cut " << cut;
    ASSERT_TRUE(std::filesystem::exists(cfg.path)) << "cut " << cut;
    EXPECT_EQ(std::filesystem::file_size(cfg.path), cut) << "cut " << cut;

    CheckpointData loaded;
    EXPECT_FALSE(
        load_checkpoint(cfg, &loaded, CheckpointData::Mode::kFindState))
        << "cut " << cut << " must not load";
    util::FailPoints::instance().disarm_all();
  }

  // Sanity: with nothing armed the same data round-trips.
  CheckpointConfig cfg{test_path("intact.ckpt"), 0xABCDEF01u, 1};
  ASSERT_TRUE(save_checkpoint(cfg, data));
  EXPECT_EQ(std::filesystem::file_size(cfg.path), full);
  CheckpointData loaded;
  EXPECT_TRUE(
      load_checkpoint(cfg, &loaded, CheckpointData::Mode::kFindState));
}

TEST_F(CheckpointFaultTest, CrcFlipOnSaveIsRejectedOnLoad) {
  // `ckpt.save.crc`: the file is complete and well-shaped but one trailer
  // bit flipped between compute and write — bit rot is invisible to the
  // saver (it reports success), so load is the layer that must refuse it.
  const CheckpointData data = sample_data();
  CheckpointConfig cfg{test_path("crcflip.ckpt"), 0xABCDEF01u, 1};
  arm("ckpt.save.crc=error:hits(1,1)");
  EXPECT_TRUE(save_checkpoint(cfg, data));
  ASSERT_TRUE(std::filesystem::exists(cfg.path));
  CheckpointData loaded;
  EXPECT_FALSE(
      load_checkpoint(cfg, &loaded, CheckpointData::Mode::kFindState));
}

/// Engine-level resume after a torn checkpoint, parameterized over the
/// visited-table backend: whatever the tear left on disk, the engine
/// starts fresh and still produces the bit-identical uninterrupted
/// result — on the flat table and the compact table alike.
class TornResumeTest : public testing::TestWithParam<TableBackend> {
 protected:
  void TearDown() override { util::FailPoints::instance().disarm_all(); }

  CheckResult run(const TtpcStarModel& model, std::uint64_t max_states,
                  const CheckpointConfig* cfg) {
    if (GetParam() == TableBackend::kCompact) {
      return Checker<TtpcStarModel, util::CompactStateTable>(model).check(
          no_integrated_node_freezes(), max_states, nullptr, cfg);
    }
    return Checker(model).check(no_integrated_node_freezes(), max_states,
                                nullptr, cfg);
  }
};

TEST_P(TornResumeTest, TornCheckpointMeansFreshStartBitIdentical) {
  TtpcStarModel model(config(guardian::Authority::kPassive, 3));
  const CheckResult baseline = run(model, 50'000'000, nullptr);
  ASSERT_EQ(baseline.verdict, Verdict::kHolds);

  // Interrupt with checkpointing armed to tear every save at byte 80 —
  // past the header, inside the first visited entry. The test dir is
  // stable across invocations and the resume run below leaves a complete
  // checkpoint behind, so drop any leftover or the "partial" run would
  // resume from it instead of exploring.
  CheckpointConfig cfg{test_path("torn.ckpt"), 7, 1};
  std::filesystem::remove(cfg.path);
  std::string error;
  ASSERT_TRUE(util::FailPoints::instance().arm(
      "ckpt.save.torn=short-io(80)", &error))
      << error;
  const CheckResult partial = run(model, 1'000, &cfg);
  ASSERT_EQ(partial.verdict, Verdict::kInconclusive);
  util::FailPoints::instance().disarm_all();
  ASSERT_TRUE(std::filesystem::exists(cfg.path));
  EXPECT_EQ(std::filesystem::file_size(cfg.path), 80u);

  // Resume from the torn file: fresh start (never a crash), and the fresh
  // run is bit-identical to never having checkpointed at all.
  const CheckResult resumed = run(model, 50'000'000, &cfg);
  EXPECT_FALSE(resumed.stats.resumed);
  EXPECT_EQ(resumed.verdict, baseline.verdict);
  EXPECT_EQ(resumed.stats.states_explored, baseline.stats.states_explored);
  EXPECT_EQ(resumed.stats.transitions, baseline.stats.transitions);
  EXPECT_EQ(resumed.stats.max_depth, baseline.stats.max_depth);
}

INSTANTIATE_TEST_SUITE_P(Backends, TornResumeTest,
                         testing::Values(TableBackend::kFlat,
                                         TableBackend::kCompact),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(Resume, CorruptCheckpointMeansFreshStartNotCrash) {
  TtpcStarModel model(config(guardian::Authority::kPassive, 3));
  CheckpointConfig cfg{test_path("corrupt.ckpt"), 7, 1};
  auto partial = Checker(model).check(no_integrated_node_freezes(),
                                      /*max_states=*/1'000, nullptr, &cfg);
  ASSERT_EQ(partial.verdict, Verdict::kInconclusive);
  ASSERT_TRUE(std::filesystem::exists(cfg.path));

  auto damaged = read_file(cfg.path);
  damaged[damaged.size() / 3] ^= 0x01;
  write_file(cfg.path, damaged);

  auto res = Checker(model).check(no_integrated_node_freezes(),
                                  /*max_states=*/50'000'000, nullptr, &cfg);
  EXPECT_FALSE(res.stats.resumed);  // fresh start
  EXPECT_EQ(res.verdict, Verdict::kHolds);
  // A fresh start is always correct: same result as never checkpointing.
  const auto plain = Checker(model).check(no_integrated_node_freezes());
  EXPECT_EQ(res.stats.states_explored, plain.stats.states_explored);
}

}  // namespace
}  // namespace tta::mc
