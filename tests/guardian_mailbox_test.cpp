#include "guardian/mailbox.h"

#include <gtest/gtest.h>

#include "ttpc/config.h"

namespace tta::guardian {
namespace {

using ttpc::ChannelFrame;
using ttpc::FrameKind;

ttpc::Medl medl() { return ttpc::Medl::uniform(ttpc::ProtocolConfig{}); }

ChannelFrame frame(ttpc::SlotNumber id) { return {FrameKind::kCState, id}; }

TEST(Mailbox, UnavailableWithoutBufferingAuthority) {
  for (Authority a : {Authority::kPassive, Authority::kTimeWindows,
                      Authority::kSmallShifting}) {
    MailboxService mb(a, medl());
    EXPECT_FALSE(mb.available()) << to_string(a);
    mb.observe(1, frame(1));
    EXPECT_FALSE(mb.substitute(1).has_value());
    EXPECT_FALSE(mb.staleness(1).has_value());
  }
}

TEST(Mailbox, CachesAndSubstitutes) {
  MailboxService mb(Authority::kFullShifting, medl());
  ASSERT_TRUE(mb.available());
  EXPECT_FALSE(mb.substitute(2).has_value());  // nothing cached yet
  mb.observe(2, frame(2));
  auto sub = mb.substitute(2);
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(*sub, frame(2));
}

TEST(Mailbox, SlotsAreIndependent) {
  MailboxService mb(Authority::kFullShifting, medl());
  mb.observe(1, frame(1));
  EXPECT_TRUE(mb.substitute(1).has_value());
  EXPECT_FALSE(mb.substitute(3).has_value());
}

TEST(Mailbox, NoiseAndSilenceAreNotCached) {
  MailboxService mb(Authority::kFullShifting, medl());
  mb.observe(1, ChannelFrame{});
  mb.observe(1, ChannelFrame{FrameKind::kBad, 0});
  EXPECT_FALSE(mb.substitute(1).has_value());
}

TEST(Mailbox, StalenessAgesPerRound) {
  MailboxService mb(Authority::kFullShifting, medl());
  mb.observe(3, frame(3));
  EXPECT_EQ(mb.staleness(3), 0u);
  mb.end_of_round();
  EXPECT_EQ(mb.staleness(3), 1u);
  mb.end_of_round();
  EXPECT_EQ(mb.staleness(3), 2u);
  mb.observe(3, frame(3));  // fresh frame resets age
  EXPECT_EQ(mb.staleness(3), 0u);
}

TEST(PriorityRelay, UnavailableWithoutBufferingAuthority) {
  PriorityRelay relay(Authority::kSmallShifting, 8);
  EXPECT_FALSE(relay.available());
  EXPECT_FALSE(relay.enqueue(0, frame(1)));
  EXPECT_FALSE(relay.pop().has_value());
}

TEST(PriorityRelay, DrainsInPriorityOrder) {
  PriorityRelay relay(Authority::kFullShifting, 8);
  EXPECT_TRUE(relay.enqueue(5, frame(1)));
  EXPECT_TRUE(relay.enqueue(1, frame(2)));
  EXPECT_TRUE(relay.enqueue(3, frame(3)));
  EXPECT_EQ(relay.pop()->id, 2);  // priority 1 first
  EXPECT_EQ(relay.pop()->id, 3);
  EXPECT_EQ(relay.pop()->id, 1);
  EXPECT_FALSE(relay.pop().has_value());
}

TEST(PriorityRelay, FifoWithinSamePriority) {
  PriorityRelay relay(Authority::kFullShifting, 8);
  relay.enqueue(2, frame(1));
  relay.enqueue(2, frame(2));
  relay.enqueue(2, frame(3));
  EXPECT_EQ(relay.pop()->id, 1);
  EXPECT_EQ(relay.pop()->id, 2);
  EXPECT_EQ(relay.pop()->id, 3);
}

TEST(PriorityRelay, BoundedCapacity) {
  PriorityRelay relay(Authority::kFullShifting, 2);
  EXPECT_TRUE(relay.enqueue(0, frame(1)));
  EXPECT_TRUE(relay.enqueue(0, frame(2)));
  EXPECT_FALSE(relay.enqueue(0, frame(3)));
  EXPECT_EQ(relay.size(), 2u);
  relay.pop();
  EXPECT_TRUE(relay.enqueue(0, frame(3)));
}

TEST(DataContinuity, MailboxImprovesAvailability) {
  // The paper's motivation, quantified: on a lossy channel the mailbox
  // substitutes stale values for lost frames...
  ttpc::Medl m = medl();
  auto without = measure_data_continuity(Authority::kSmallShifting, m,
                                         10'000, 0.2, 42);
  auto with = measure_data_continuity(Authority::kFullShifting, m, 10'000,
                                      0.2, 42);
  EXPECT_NEAR(without.availability(10'000), 0.8, 0.02);
  EXPECT_GT(with.availability(10'000), 0.97);
  EXPECT_EQ(without.delivered_stale, 0u);
  // ...and every one of those substitutions is a frame outside its
  // original slot — the out_of_slot fault class, offered as a feature.
  EXPECT_GT(with.delivered_stale, 1000u);
}

TEST(DataContinuity, NoLossMeansNoStaleness) {
  auto report = measure_data_continuity(Authority::kFullShifting, medl(),
                                        1'000, 0.0, 7);
  EXPECT_EQ(report.delivered_fresh, 1'000u);
  EXPECT_EQ(report.delivered_stale, 0u);
  EXPECT_EQ(report.lost, 0u);
}

TEST(DataContinuity, DeterministicForSeed) {
  auto a = measure_data_continuity(Authority::kFullShifting, medl(), 5'000,
                                   0.3, 99);
  auto b = measure_data_continuity(Authority::kFullShifting, medl(), 5'000,
                                   0.3, 99);
  EXPECT_EQ(a.delivered_fresh, b.delivered_fresh);
  EXPECT_EQ(a.delivered_stale, b.delivered_stale);
  EXPECT_EQ(a.lost, b.lost);
}

}  // namespace
}  // namespace tta::guardian
