#include "util/log.h"

#include <gtest/gtest.h>

namespace tta::util {
namespace {

// The logger writes to stderr; these tests pin the level gate (the part
// callers depend on) and restore the global threshold they mutate.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_;
};

TEST_F(LogTest, DefaultThresholdSuppressesInfo) {
  // Tests and benches rely on a quiet default.
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LogTest, ThresholdIsSettableAndReadable) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LogTest, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST_F(LogTest, SuppressedAndEmittedCallsAreSafe) {
  // Exercise both paths (below and above threshold) for crash-freedom and
  // format handling; output goes to stderr and is not asserted on.
  set_log_level(LogLevel::kOff);
  TTA_LOG_ERROR("suppressed %d %s", 42, "args");
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  TTA_LOG_ERROR("emitted %d", 7);
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[ERROR] emitted 7"), std::string::npos);
}

TEST_F(LogTest, TagMatchesLevel) {
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  TTA_LOG_WARN("w");
  TTA_LOG_DEBUG("d");
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[WARN] w"), std::string::npos);
  EXPECT_NE(err.find("[DEBUG] d"), std::string::npos);
}

}  // namespace
}  // namespace tta::util
