#include "mc/model.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tta::mc {
namespace {

ModelConfig full_shifting(unsigned max_oos = 7) {
  ModelConfig cfg;
  cfg.authority = guardian::Authority::kFullShifting;
  cfg.max_out_of_slot_errors = max_oos;
  return cfg;
}

ModelConfig passive() {
  ModelConfig cfg;
  cfg.authority = guardian::Authority::kPassive;
  return cfg;
}

TEST(Model, InitialStateIsAllFrozen) {
  TtpcStarModel model(passive());
  WorldState init = model.initial();
  for (std::size_t i = 0; i < model.num_nodes(); ++i) {
    EXPECT_EQ(init.nodes[i].state, ttpc::CtrlState::kFreeze);
  }
  EXPECT_EQ(init.couplers[0].buffered_frame, ttpc::FrameKind::kNone);
  EXPECT_EQ(init.oos_errors_used, 0);
}

TEST(Model, PackUnpackRoundTripsRandomStates) {
  TtpcStarModel model(full_shifting());
  util::Rng rng(31);
  for (int iter = 0; iter < 500; ++iter) {
    WorldState s;
    for (std::size_t i = 0; i < model.num_nodes(); ++i) {
      s.nodes[i].state = static_cast<ttpc::CtrlState>(rng.next_below(9));
      s.nodes[i].slot = static_cast<ttpc::SlotNumber>(rng.next_in(1, 4));
      s.nodes[i].agreed = static_cast<std::uint8_t>(rng.next_below(16));
      s.nodes[i].failed = static_cast<std::uint8_t>(rng.next_below(16));
      s.nodes[i].big_bang = rng.next_bool(0.5);
      s.nodes[i].listen_timeout = static_cast<std::uint8_t>(rng.next_below(9));
    }
    for (auto& c : s.couplers) {
      c.buffered_frame = static_cast<ttpc::FrameKind>(rng.next_below(5));
      c.buffered_id = static_cast<ttpc::SlotNumber>(rng.next_below(5));
    }
    s.oos_errors_used = static_cast<std::uint8_t>(rng.next_below(8));
    EXPECT_EQ(model.unpack(model.pack(s)), s);
  }
}

TEST(Model, DistinctStatesPackDistinctly) {
  TtpcStarModel model(passive());
  WorldState a = model.initial();
  WorldState b = a;
  b.nodes[2].big_bang = true;
  EXPECT_NE(model.pack(a), model.pack(b));
  WorldState c = a;
  c.couplers[1].buffered_id = 3;
  EXPECT_NE(model.pack(a), model.pack(c));
}

TEST(Model, InitialSuccessorsCoverFreezeChoices) {
  // 4 nodes x {stay, init} = 16 node-choice combinations; only the no-fault
  // and silence/bad single-fault pairs apply (no frames buffered yet).
  TtpcStarModel model(passive());
  auto succs = model.successors(model.initial());
  // fault pairs: nn, s-, -s, b-, -b = 5; choices: 2^4 = 16.
  EXPECT_EQ(succs.size(), 5u * 16u);
}

TEST(Model, FaultAlphabetRespectsConfigFlags) {
  ModelConfig cfg = passive();
  cfg.allow_silence_fault = false;
  cfg.allow_bad_frame_fault = false;
  TtpcStarModel model(cfg);
  auto succs = model.successors(model.initial());
  EXPECT_EQ(succs.size(), 16u);  // only the fault-free pair remains
}

TEST(Model, ApplyReplaysSuccessorExactly) {
  TtpcStarModel model(full_shifting());
  WorldState s = model.initial();
  for (int depth = 0; depth < 6; ++depth) {
    auto succs = model.successors(s);
    ASSERT_FALSE(succs.empty());
    const Successor& pick = succs[succs.size() / 2];
    auto [replayed, label] = model.apply(s, pick.choice_code);
    EXPECT_EQ(replayed, pick.next);
    s = pick.next;
  }
}

TEST(Model, ReplayRequiresBufferedFrame) {
  // out_of_slot on an empty buffer is pruned (it would be plain silence).
  TtpcStarModel model(full_shifting());
  for (const Successor& succ : model.successors(model.initial())) {
    auto [next, label] = model.apply(model.initial(), succ.choice_code);
    EXPECT_EQ(label.fault0 == guardian::CouplerFault::kOutOfSlot, false);
    EXPECT_EQ(label.fault1 == guardian::CouplerFault::kOutOfSlot, false);
  }
}

WorldState state_with_buffered_coldstart(const TtpcStarModel& model) {
  WorldState s = model.initial();
  s.couplers[0].buffered_frame = ttpc::FrameKind::kColdStart;
  s.couplers[0].buffered_id = 1;
  s.couplers[1].buffered_frame = ttpc::FrameKind::kColdStart;
  s.couplers[1].buffered_id = 1;
  return s;
}

TEST(Model, ReplayAvailableOnceBufferHoldsAFrame) {
  TtpcStarModel model(full_shifting());
  WorldState s = state_with_buffered_coldstart(model);
  bool saw_replay = false;
  for (const Successor& succ : model.successors(s)) {
    auto [next, label] = model.apply(s, succ.choice_code);
    if (label.fault0 == guardian::CouplerFault::kOutOfSlot) {
      saw_replay = true;
      EXPECT_EQ(label.ch0,
                (ttpc::ChannelFrame{ttpc::FrameKind::kColdStart, 1}));
      EXPECT_EQ(next.oos_errors_used, 1);
    }
  }
  EXPECT_TRUE(saw_replay);
}

TEST(Model, OutOfSlotBudgetIsEnforced) {
  TtpcStarModel model(full_shifting(/*max_oos=*/1));
  WorldState s = state_with_buffered_coldstart(model);
  s.oos_errors_used = 1;  // budget spent
  for (const Successor& succ : model.successors(s)) {
    auto [next, label] = model.apply(s, succ.choice_code);
    EXPECT_NE(label.fault0, guardian::CouplerFault::kOutOfSlot);
    EXPECT_NE(label.fault1, guardian::CouplerFault::kOutOfSlot);
  }
}

TEST(Model, ColdStartDuplicationConstraintPrunesReplay) {
  ModelConfig cfg = full_shifting();
  cfg.allow_coldstart_duplication = false;
  TtpcStarModel model(cfg);
  WorldState s = state_with_buffered_coldstart(model);
  for (const Successor& succ : model.successors(s)) {
    auto [next, label] = model.apply(s, succ.choice_code);
    EXPECT_NE(label.fault0, guardian::CouplerFault::kOutOfSlot);
    EXPECT_NE(label.fault1, guardian::CouplerFault::kOutOfSlot);
  }
}

TEST(Model, CStateDuplicationConstraintIsIndependent) {
  ModelConfig cfg = full_shifting();
  cfg.allow_coldstart_duplication = false;  // but C-state replay still legal
  TtpcStarModel model(cfg);
  WorldState s = model.initial();
  s.couplers[0].buffered_frame = ttpc::FrameKind::kCState;
  s.couplers[0].buffered_id = 2;
  bool saw_replay = false;
  for (const Successor& succ : model.successors(s)) {
    auto [next, label] = model.apply(s, succ.choice_code);
    if (label.fault0 == guardian::CouplerFault::kOutOfSlot) saw_replay = true;
  }
  EXPECT_TRUE(saw_replay);
}

TEST(Model, NonBufferingAuthoritiesNeverReplay) {
  for (guardian::Authority a :
       {guardian::Authority::kPassive, guardian::Authority::kTimeWindows,
        guardian::Authority::kSmallShifting}) {
    ModelConfig cfg;
    cfg.authority = a;
    TtpcStarModel model(cfg);
    WorldState s = state_with_buffered_coldstart(model);
    for (const Successor& succ : model.successors(s)) {
      auto [next, label] = model.apply(s, succ.choice_code);
      EXPECT_NE(label.fault0, guardian::CouplerFault::kOutOfSlot);
      EXPECT_NE(label.fault1, guardian::CouplerFault::kOutOfSlot);
    }
  }
}

TEST(Model, AtMostOneCouplerFaultyPerStep) {
  // "couplerA.fault = none | couplerB.fault = none"
  TtpcStarModel model(full_shifting());
  WorldState s = state_with_buffered_coldstart(model);
  for (const Successor& succ : model.successors(s)) {
    auto [next, label] = model.apply(s, succ.choice_code);
    EXPECT_TRUE(label.fault0 == guardian::CouplerFault::kNone ||
                label.fault1 == guardian::CouplerFault::kNone);
  }
}

TEST(Model, SuccessorStatesAreDeduplicatableByPacking) {
  // Different choice codes may lead to identical states (e.g. silence fault
  // on a quiet channel); packing must make them collide for the BFS.
  TtpcStarModel model(passive());
  WorldState s = model.initial();
  auto succs = model.successors(s);
  std::size_t distinct = 0;
  std::vector<util::PackedState> seen;
  for (const auto& succ : succs) {
    util::PackedState p = model.pack(succ.next);
    bool found = false;
    for (const auto& q : seen) found |= (q == p);
    if (!found) {
      seen.push_back(p);
      ++distinct;
    }
  }
  // With a silent channel, all 5 fault pairs yield the same channel view,
  // so only the node-choice combinations remain distinct.
  EXPECT_EQ(distinct, 16u);
}

TEST(Model, SingleCouplerHasNoChannelOneFaults) {
  // The single-coupler composition removes channel 1 entirely: no fault
  // pairs target it and its view is permanent silence.
  ModelConfig cfg = full_shifting();
  cfg.num_couplers = 1;
  TtpcStarModel model(cfg);
  for (const Successor& succ : model.successors(model.initial())) {
    auto [next, label] = model.apply(model.initial(), succ.choice_code);
    EXPECT_EQ(label.fault1, guardian::CouplerFault::kNone);
    EXPECT_EQ(label.ch1.kind, ttpc::FrameKind::kNone);
    EXPECT_EQ(next.couplers[1].buffered_frame, ttpc::FrameKind::kNone);
  }
}

TEST(Model, SingleCouplerHalvesTheFaultAlphabet) {
  // Dual star: each single fault appears as (f, none) and (none, f).
  // Single star: only (f, none) survives, so the initial state has half
  // the faulty branches.
  ModelConfig dual = passive();
  ModelConfig single = passive();
  single.num_couplers = 1;
  const auto dual_succs = TtpcStarModel(dual).successors(
      TtpcStarModel(dual).initial());
  const auto single_succs = TtpcStarModel(single).successors(
      TtpcStarModel(single).initial());
  EXPECT_LT(single_succs.size(), dual_succs.size());
}

TEST(Model, SingleCouplerShrinksThePackedState) {
  ModelConfig dual = full_shifting();
  ModelConfig single = full_shifting();
  single.num_couplers = 1;
  TtpcStarModel dual_model(dual);
  TtpcStarModel single_model(single);
  EXPECT_LT(single_model.packed_bits(), dual_model.packed_bits());

  // Round-trip still holds at the narrower width.
  WorldState s = single_model.initial();
  s.nodes[0].state = ttpc::CtrlState::kActive;
  s.couplers[0].buffered_frame = ttpc::FrameKind::kCState;
  s.couplers[0].buffered_id = 3;
  EXPECT_EQ(single_model.unpack(single_model.pack(s)), s);
}

}  // namespace
}  // namespace tta::mc
