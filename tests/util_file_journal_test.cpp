// The crash-tolerance contract of the journal primitive: every intact
// record before the first damage is recovered, everything after it is
// quarantined — counted, truncated on reopen, never a crash — and the
// byte-oriented util::crc32 agrees bit for bit with the wire layer's
// bit-serial CRC engine running the same CRC-32/BZIP2 spec.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/fail_point.h"
#include "util/file_journal.h"
#include "wire/bitstream.h"
#include "wire/crc.h"

namespace tta::util {
namespace {

std::string test_path(const std::string& name) {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "tta_journal" / info->name();
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

std::vector<std::vector<std::uint8_t>> scan_payloads(const std::string& path,
                                                     JournalScan* scan) {
  std::vector<std::vector<std::uint8_t>> payloads;
  *scan = scan_journal(path, [&](const std::uint8_t* p, std::size_t n) {
    payloads.emplace_back(p, p + n);
  });
  return payloads;
}

TEST(Crc32, KnownAnswerAndIncrementalEquivalence) {
  // CRC-32/BZIP2 check value for the standard "123456789" test vector.
  const char* msg = "123456789";
  EXPECT_EQ(crc32(msg, 9), 0xFC891918u);

  Crc32 inc;
  inc.update(msg, 4).update(msg + 4, 5);
  EXPECT_EQ(inc.value(), 0xFC891918u);

  EXPECT_EQ(crc32(nullptr, 0), 0u);  // init ^ xorout with no bytes
}

TEST(Crc32, MatchesBitSerialWireEngineOnSameSpec) {
  // The persistence CRC and the wire CRC must be the same function: feed
  // identical bytes (MSB-first, as the table-driven version consumes them)
  // through wire::Crc under the crc32_bzip2 spec and compare.
  const std::vector<std::vector<std::uint8_t>> cases = {
      {},
      {0x00},
      {0xFF},
      bytes({0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39}),
      bytes({0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02, 0x03, 0x7F, 0x80}),
  };
  for (const auto& data : cases) {
    wire::BitStream bits;
    for (std::uint8_t b : data) bits.push_bits(b, 8);
    const std::uint32_t wire_value =
        wire::Crc::compute(wire::crc32_bzip2(), bits);
    EXPECT_EQ(crc32(data.data(), data.size()), wire_value)
        << "length " << data.size();
  }
}

TEST(FileJournal, RoundTripRecoversEveryRecord) {
  const std::string path = test_path("journal");
  {
    JournalWriter w;
    ASSERT_TRUE(w.open(path, 0));
    ASSERT_TRUE(w.append(bytes({1, 2, 3})));
    ASSERT_TRUE(w.append(bytes({})));  // empty payloads are legal records
    ASSERT_TRUE(w.append(bytes({0xFF, 0x00, 0xAA, 0x55})));
    ASSERT_TRUE(w.sync());
  }
  JournalScan scan;
  auto payloads = scan_payloads(path, &scan);
  EXPECT_EQ(scan.records, 3u);
  EXPECT_FALSE(scan.damaged());
  EXPECT_FALSE(scan.file_missing);
  EXPECT_EQ(scan.quarantined_bytes, 0u);
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], bytes({1, 2, 3}));
  EXPECT_TRUE(payloads[1].empty());
  EXPECT_EQ(payloads[2], bytes({0xFF, 0x00, 0xAA, 0x55}));
}

TEST(FileJournal, MissingFileIsFreshStartNotDamage) {
  JournalScan scan;
  auto payloads = scan_payloads(test_path("nonexistent"), &scan);
  EXPECT_TRUE(payloads.empty());
  EXPECT_TRUE(scan.file_missing);
  EXPECT_FALSE(scan.damaged());
}

TEST(FileJournal, EmptyFileIsNoRecordsNotDamage) {
  const std::string path = test_path("journal");
  write_file(path, {});
  JournalScan scan;
  auto payloads = scan_payloads(path, &scan);
  EXPECT_TRUE(payloads.empty());
  EXPECT_FALSE(scan.file_missing);
  EXPECT_FALSE(scan.damaged());
  EXPECT_EQ(scan.valid_bytes, 0u);
}

TEST(FileJournal, TruncatedTailIsQuarantinedAndTruncatedOnReopen) {
  const std::string path = test_path("journal");
  std::uint64_t two_records = 0;
  {
    JournalWriter w;
    ASSERT_TRUE(w.open(path, 0));
    ASSERT_TRUE(w.append(bytes({1, 2, 3, 4})));
    ASSERT_TRUE(w.append(bytes({5, 6, 7, 8})));
    two_records = w.bytes_written();
    ASSERT_TRUE(w.append(bytes({9, 10, 11, 12})));
  }
  // Simulate the torn final write of a killed process: drop the last 2
  // bytes of the third record.
  auto data = read_file(path);
  data.resize(data.size() - 2);
  write_file(path, data);

  JournalScan scan;
  auto payloads = scan_payloads(path, &scan);
  EXPECT_EQ(scan.records, 2u);
  EXPECT_EQ(scan.truncated_records, 1u);
  EXPECT_EQ(scan.corrupt_records, 0u);
  EXPECT_EQ(scan.valid_bytes, two_records);
  EXPECT_EQ(scan.quarantined_bytes, data.size() - two_records);
  ASSERT_EQ(payloads.size(), 2u);

  // Reopening at the valid prefix physically removes the torn tail, and
  // appends land where the quarantined bytes used to be.
  {
    JournalWriter w;
    ASSERT_TRUE(w.open(path, scan.valid_bytes));
    ASSERT_TRUE(w.append(bytes({42})));
  }
  JournalScan rescan;
  auto recovered = scan_payloads(path, &rescan);
  EXPECT_FALSE(rescan.damaged());
  ASSERT_EQ(recovered.size(), 3u);
  EXPECT_EQ(recovered[2], bytes({42}));
}

TEST(FileJournal, BitFlippedRecordStopsTheScanAtTheDamage) {
  const std::string path = test_path("journal");
  std::uint64_t first_record = 0;
  {
    JournalWriter w;
    ASSERT_TRUE(w.open(path, 0));
    ASSERT_TRUE(w.append(bytes({1, 2, 3, 4})));
    first_record = w.bytes_written();
    ASSERT_TRUE(w.append(bytes({5, 6, 7, 8})));
    ASSERT_TRUE(w.append(bytes({9, 10, 11, 12})));
  }
  // Flip one payload bit inside the second record.
  auto data = read_file(path);
  data[first_record + 8] ^= 0x10;  // 8 = frame header (len + crc)
  write_file(path, data);

  JournalScan scan;
  auto payloads = scan_payloads(path, &scan);
  // Only the record before the damage survives; the third record is
  // unreachable (the scan cannot trust framing past a corrupt frame) and
  // counts as quarantined bytes.
  EXPECT_EQ(scan.records, 1u);
  EXPECT_EQ(scan.corrupt_records, 1u);
  EXPECT_EQ(scan.valid_bytes, first_record);
  EXPECT_EQ(scan.quarantined_bytes, data.size() - first_record);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], bytes({1, 2, 3, 4}));
}

TEST(FileJournal, AbsurdLengthHeaderIsCorruptNotAnAllocation) {
  const std::string path = test_path("journal");
  // A frame whose header promises ~4 GiB must be rejected by the sanity
  // cap, not attempted.
  std::vector<std::uint8_t> data = {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0};
  write_file(path, data);
  JournalScan scan;
  auto payloads = scan_payloads(path, &scan);
  EXPECT_TRUE(payloads.empty());
  EXPECT_TRUE(scan.damaged());
  EXPECT_EQ(scan.valid_bytes, 0u);
}

/// Fail-point injection into the writer (see file_journal.h for the two
/// sites). Disarms on exit so the plain suites above stay clean.
class FileJournalFaultTest : public testing::Test {
 protected:
  void TearDown() override { FailPoints::instance().disarm_all(); }

  void arm(const char* config) {
    std::string error;
    ASSERT_TRUE(FailPoints::instance().arm(config, &error)) << error;
  }
};

TEST_F(FileJournalFaultTest, EnospcAppendFailsExplicitlyAndHealsTheTail) {
  const std::string path = test_path("journal");
  JournalWriter writer;
  ASSERT_TRUE(writer.open_fresh(path));
  ASSERT_TRUE(writer.append(bytes({1, 2, 3})));
  const std::uint64_t boundary = writer.bytes_written();

  // One injected ENOSPC: the append reports failure, counts it, and the
  // file is already healed back to the record boundary — the journal is
  // valid right now, not just after the next reopen.
  arm("journal.append.enospc=error:hits(1,1)");
  EXPECT_FALSE(writer.append(bytes({4, 5, 6})));
  EXPECT_EQ(writer.io_errors(), 1u);
  EXPECT_EQ(std::filesystem::file_size(path), boundary);

  // The condition cleared (fault window closed): the writer keeps going
  // on the same handle, and recovery sees clean records only.
  EXPECT_TRUE(writer.append(bytes({7, 8, 9})));
  writer.close();
  JournalScan scan;
  auto payloads = scan_payloads(path, &scan);
  EXPECT_FALSE(scan.damaged());
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], bytes({1, 2, 3}));
  EXPECT_EQ(payloads[1], bytes({7, 8, 9}));
}

TEST_F(FileJournalFaultTest, TornAppendLooksLikeACrashAndIsQuarantined) {
  const std::string path = test_path("journal");
  std::uint64_t boundary = 0;
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.open_fresh(path));
    ASSERT_TRUE(writer.append(bytes({1, 2, 3, 4})));
    boundary = writer.bytes_written();

    // Torn write: 5 of the frame's 12 bytes land, then the "process
    // dies" — the writer closes itself and must NOT heal, because a real
    // crash gets no chance to. The torn tail stays on disk.
    arm("journal.append.torn=short-io(5):hits(1,1)");
    EXPECT_FALSE(writer.append(bytes({9, 9, 9, 9})));
    EXPECT_FALSE(writer.is_open());
    EXPECT_EQ(writer.io_errors(), 1u);
  }
  EXPECT_EQ(std::filesystem::file_size(path), boundary + 5);

  // Recovery: the intact record survives, the torn frame is quarantined,
  // and reopening truncates it away.
  JournalScan scan;
  auto payloads = scan_payloads(path, &scan);
  EXPECT_EQ(scan.records, 1u);
  EXPECT_EQ(scan.truncated_records, 1u);
  EXPECT_EQ(scan.quarantined_bytes, 5u);
  EXPECT_EQ(scan.valid_bytes, boundary);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], bytes({1, 2, 3, 4}));

  JournalWriter reopened;
  ASSERT_TRUE(reopened.open(path, scan.valid_bytes));
  ASSERT_TRUE(reopened.append(bytes({5, 6})));
  reopened.close();
  JournalScan clean;
  auto after = scan_payloads(path, &clean);
  EXPECT_FALSE(clean.damaged());
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1], bytes({5, 6}));
}

TEST_F(FileJournalFaultTest, SyncFailureIsCountedNotFatal) {
  const std::string path = test_path("journal");
  JournalWriter writer;
  ASSERT_TRUE(writer.open_fresh(path));
  ASSERT_TRUE(writer.append(bytes({1})));

  arm("journal.sync=error:hits(1,1)");
  EXPECT_FALSE(writer.sync());
  EXPECT_EQ(writer.io_errors(), 1u);
  // The writer survives a failed fsync; data and later syncs are fine.
  EXPECT_TRUE(writer.append(bytes({2})));
  EXPECT_TRUE(writer.sync());
}

}  // namespace
}  // namespace tta::util
