// The swarm racing engine's determinism contract (docs/CHECKER.md): the
// racers may find a violation in any randomized order, but the REPORTED
// result is canonical — bit-identical verdict, statistics, and trace
// length to the serial reference for every seed — and HOLDS can only come
// from the exhaustive sweep.
#include <gtest/gtest.h>

#include <set>

#include "mc/engine.h"
#include "mc/swarm_engine.h"
#include "util/cancel_token.h"

namespace tta::mc {
namespace {

ModelConfig config(guardian::Authority a, std::uint8_t nodes = 4) {
  ModelConfig cfg;
  cfg.authority = a;
  cfg.protocol.num_nodes = nodes;
  cfg.protocol.num_slots = nodes;
  return cfg;
}

EngineQuery safety_query() {
  EngineQuery query;
  query.kind = EngineQuery::Kind::kSafetyCheck;
  query.violation = no_integrated_node_freezes();
  return query;
}

EngineQuery all_active_query(const TtpcStarModel& model,
                             EngineQuery::Kind kind) {
  EngineQuery query;
  query.kind = kind;
  const std::size_t n = model.num_nodes();
  query.goal = [n](const WorldState& w) {
    for (std::size_t i = 0; i < n; ++i) {
      if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
    }
    return true;
  };
  return query;
}

void expect_canonical_match(const EngineResult& swarm,
                            const EngineResult& serial) {
  EXPECT_EQ(swarm.verdict, serial.verdict);
  EXPECT_EQ(swarm.stats.states_explored, serial.stats.states_explored);
  EXPECT_EQ(swarm.stats.transitions, serial.stats.transitions);
  EXPECT_EQ(swarm.stats.max_depth, serial.stats.max_depth);
  EXPECT_EQ(swarm.trace.size(), serial.trace.size());
  // The merged result must survive the same cross_check every other
  // engine pair is held to.
  EXPECT_NE(cross_check(serial, swarm).verdict, Verdict::kEngineDivergence);
}

TEST(SwarmWorkerSeed, PureAndWellSpread) {
  // Replayability hinges on the derivation being pure in (seed, worker);
  // usefulness hinges on distinct workers getting distinct streams.
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed : {0ull, 1ull, 42ull, ~0ull}) {
    for (unsigned w = 0; w < 8; ++w) {
      const std::uint64_t derived = swarm_worker_seed(seed, w);
      EXPECT_EQ(derived, swarm_worker_seed(seed, w));
      seen.insert(derived);
    }
  }
  EXPECT_EQ(seen.size(), 4u * 8u);
}

TEST(SwarmEngine, NameAndCheckpointSurface) {
  SwarmEngine engine(4, 7);
  EXPECT_STREQ(engine.name(), "swarm");
  EXPECT_FALSE(engine.supports_checkpoint());
  EXPECT_EQ(engine.racers(), 4u);
  EXPECT_EQ(engine.seed(), 7u);
}

TEST(SwarmEngine, ViolatedIsCanonicalAcrossSeeds) {
  // full_shifting is the paper's VIOLATED configuration: whatever ordering
  // wins the race, the reported counterexample must be the serial
  // engine's shortest one, for every seed.
  TtpcStarModel model(config(guardian::Authority::kFullShifting));
  const EngineQuery query = safety_query();
  const EngineResult serial =
      SerialEngine().run(model, query, nullptr, nullptr);
  ASSERT_EQ(serial.verdict, Verdict::kViolated);
  ASSERT_FALSE(serial.trace.empty());

  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SwarmEngine engine(4, seed, 2);
    const EngineResult swarm = engine.run(model, query, nullptr, nullptr);
    expect_canonical_match(swarm, serial);
    EXPECT_EQ(swarm.stats.swarm_workers, 4u);
  }
}

TEST(SwarmEngine, HoldsIsBitIdenticalToTheSweep) {
  // small_shifting HOLDS: only the exhaustive sweep may conclude it, and
  // the sweep's answer is bit-identical to serial by the parallel
  // contract — racers draining their private tables must not leak a
  // fabricated verdict.
  TtpcStarModel model(config(guardian::Authority::kSmallShifting));
  const EngineQuery query = safety_query();
  const EngineResult serial =
      SerialEngine().run(model, query, nullptr, nullptr);
  ASSERT_EQ(serial.verdict, Verdict::kHolds);

  SwarmEngine engine(4, 99, 2);
  const EngineResult swarm = engine.run(model, query, nullptr, nullptr);
  expect_canonical_match(swarm, serial);
  EXPECT_EQ(swarm.stats.swarm_race_won, 0u);  // nothing to race to
}

TEST(SwarmEngine, FindStateWitnessIsCanonical) {
  TtpcStarModel model(config(guardian::Authority::kSmallShifting));
  const EngineQuery query =
      all_active_query(model, EngineQuery::Kind::kFindState);
  const EngineResult serial =
      SerialEngine().run(model, query, nullptr, nullptr);

  SwarmEngine engine(3, 5, 2);
  const EngineResult swarm = engine.run(model, query, nullptr, nullptr);
  expect_canonical_match(swarm, serial);
}

TEST(SwarmEngine, RecoverabilityDelegatesToTheSweep) {
  TtpcStarModel model(config(guardian::Authority::kSmallShifting));
  const EngineQuery query =
      all_active_query(model, EngineQuery::Kind::kRecoverability);
  const EngineResult serial =
      SerialEngine().run(model, query, nullptr, nullptr);

  SwarmEngine engine(4, 11, 2);
  const EngineResult swarm = engine.run(model, query, nullptr, nullptr);
  EXPECT_EQ(swarm.verdict, serial.verdict);
  EXPECT_EQ(swarm.dead_states, serial.dead_states);
  EXPECT_EQ(swarm.stats.states_explored, serial.stats.states_explored);
  // Straight delegation: no race was fielded, so no swarm diagnostics.
  EXPECT_EQ(swarm.stats.swarm_workers, 0u);
}

TEST(SwarmEngine, PreCancelledIsInconclusive) {
  TtpcStarModel model(config(guardian::Authority::kFullShifting));
  util::CancelToken token;
  token.request_cancel();
  SwarmEngine engine(4, 1, 2);
  const EngineResult res =
      engine.run(model, safety_query(), &token, nullptr);
  EXPECT_EQ(res.verdict, Verdict::kInconclusive);
  EXPECT_TRUE(res.stats.cancelled);
  EXPECT_TRUE(res.trace.empty());
}

TEST(SwarmEngine, BudgetBailStaysInconclusive) {
  // A budget every worker exhausts: racers exit silently, the sweep
  // reports the honest inconclusive bail — never a fabricated verdict.
  TtpcStarModel model(config(guardian::Authority::kSmallShifting));
  EngineQuery query = safety_query();
  query.max_states = 500;
  SwarmEngine engine(4, 21, 2);
  const EngineResult res = engine.run(model, query, nullptr, nullptr);
  EXPECT_EQ(res.verdict, Verdict::kInconclusive);
  EXPECT_FALSE(res.stats.exhausted);
  EXPECT_EQ(res.stats.swarm_race_won, 0u);
}

}  // namespace
}  // namespace tta::mc
