// Cross-validation of the parallel reachability engine against the serial
// reference: both implement the same level-synchronized BFS, so verdicts,
// states_explored, transitions, max_depth and counterexample lengths must
// be bit-identical for every thread count (docs/CHECKER.md).
#include "mc/parallel_checker.h"

#include <gtest/gtest.h>

#include "mc/checker.h"
#include "mc/monitor.h"

namespace tta::mc {
namespace {

ModelConfig config(guardian::Authority a) {
  ModelConfig cfg;
  cfg.authority = a;
  return cfg;
}

constexpr guardian::Authority kAllAuthorities[] = {
    guardian::Authority::kPassive, guardian::Authority::kTimeWindows,
    guardian::Authority::kSmallShifting, guardian::Authority::kFullShifting};

constexpr unsigned kThreadCounts[] = {1, 2, 5};

void expect_same_stats(const CheckStats& serial, const CheckStats& parallel,
                       const char* what) {
  EXPECT_EQ(serial.states_explored, parallel.states_explored) << what;
  EXPECT_EQ(serial.transitions, parallel.transitions) << what;
  EXPECT_EQ(serial.max_depth, parallel.max_depth) << what;
  EXPECT_EQ(serial.exhausted, parallel.exhausted) << what;
}

TEST(ParallelChecker, MatchesSerialVerdictsOnAllFourAuthorityLevels) {
  for (guardian::Authority a : kAllAuthorities) {
    TtpcStarModel model(config(a));
    auto serial = Checker(model).check(no_integrated_node_freezes());
    for (unsigned threads : kThreadCounts) {
      ParallelChecker checker(model, threads);
      auto parallel = checker.check(no_integrated_node_freezes());
      const char* what = guardian::to_string(a);
      EXPECT_EQ(serial.holds(), parallel.holds())
          << what << " threads=" << threads;
      EXPECT_EQ(serial.trace.size(), parallel.trace.size())
          << what << " threads=" << threads;
      expect_same_stats(serial.stats, parallel.stats, what);
    }
  }
}

TEST(ParallelChecker, CounterexampleIsAValidMinimalViolationTrace) {
  // The parallel trace may pick a different minimal-depth violation than
  // the serial engine, but it must be a connected root-anchored trace whose
  // only violating transition is the last one.
  TtpcStarModel model(config(guardian::Authority::kFullShifting));
  ParallelChecker checker(model, 4);
  auto res = checker.check(no_integrated_node_freezes());
  ASSERT_FALSE(res.holds());
  ASSERT_FALSE(res.trace.empty());
  EXPECT_EQ(res.trace.front().before, model.initial());
  for (std::size_t i = 1; i < res.trace.size(); ++i) {
    EXPECT_EQ(res.trace[i - 1].after, res.trace[i].before) << "gap at " << i;
  }
  auto violation = no_integrated_node_freezes();
  for (std::size_t i = 0; i + 1 < res.trace.size(); ++i) {
    EXPECT_FALSE(violation(res.trace[i].before, res.trace[i].after))
        << "premature violation at step " << i;
  }
  EXPECT_TRUE(violation(res.trace.back().before, res.trace.back().after));
}

TEST(ParallelChecker, FindStateMatchesSerialWitnessDepth) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  auto all_active = [&model](const WorldState& w) {
    for (std::size_t i = 0; i < model.num_nodes(); ++i) {
      if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
    }
    return true;
  };
  auto serial = Checker(model).find_state(all_active);
  ASSERT_FALSE(serial.holds());
  for (unsigned threads : kThreadCounts) {
    ParallelChecker checker(model, threads);
    auto parallel = checker.find_state(all_active);
    EXPECT_FALSE(parallel.holds()) << "threads=" << threads;
    EXPECT_EQ(serial.trace.size(), parallel.trace.size())
        << "threads=" << threads;
    expect_same_stats(serial.stats, parallel.stats, "find_state");
    ASSERT_FALSE(parallel.trace.empty());
    EXPECT_TRUE(all_active(parallel.trace.back().after));
  }
}

TEST(ParallelChecker, UnreachableGoalExhaustsIdentically) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  auto impossible = [](const WorldState& w) {
    return w.nodes[0].state == ttpc::CtrlState::kDownload;
  };
  auto serial = Checker(model).find_state(impossible);
  ParallelChecker checker(model, 3);
  auto parallel = checker.find_state(impossible);
  EXPECT_TRUE(serial.holds());
  EXPECT_TRUE(parallel.holds());
  expect_same_stats(serial.stats, parallel.stats, "unreachable goal");
}

TEST(ParallelChecker, StateBudgetReportsUnexhaustedLikeSerial) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  auto impossible = [](const WorldState& w) {
    return w.nodes[0].state == ttpc::CtrlState::kDownload;
  };
  auto serial = Checker(model).find_state(impossible, /*max_states=*/500);
  for (unsigned threads : kThreadCounts) {
    ParallelChecker checker(model, threads);
    auto parallel = checker.find_state(impossible, /*max_states=*/500);
    EXPECT_FALSE(parallel.holds());  // a budget bail is not "unreachable"
    EXPECT_EQ(parallel.verdict, Verdict::kInconclusive);
    EXPECT_FALSE(parallel.stats.exhausted);
    // Budget bail-outs are level-synchronized in both engines, so even the
    // partial exploration agrees.
    expect_same_stats(serial.stats, parallel.stats, "budget");
  }
}

TEST(ParallelChecker, PaperTracesReproduceAtEveryThreadCount) {
  // The two narrated paper traces (Section 5.2): single-replay cold-start
  // duplication, and C-state duplication with cold-start replay forbidden.
  ModelConfig cfg = config(guardian::Authority::kFullShifting);
  cfg.max_out_of_slot_errors = 1;
  TtpcStarModel trace1(cfg);
  cfg.allow_coldstart_duplication = false;
  TtpcStarModel trace2(cfg);

  auto serial1 = Checker(trace1).check(no_integrated_node_freezes());
  auto serial2 = Checker(trace2).check(no_integrated_node_freezes());
  ASSERT_FALSE(serial1.holds());
  ASSERT_FALSE(serial2.holds());

  for (unsigned threads : kThreadCounts) {
    ParallelChecker c1(trace1, threads);
    ParallelChecker c2(trace2, threads);
    auto p1 = c1.check(no_integrated_node_freezes());
    auto p2 = c2.check(no_integrated_node_freezes());
    EXPECT_FALSE(p1.holds());
    EXPECT_FALSE(p2.holds());
    EXPECT_EQ(serial1.trace.size(), p1.trace.size());
    EXPECT_EQ(serial2.trace.size(), p2.trace.size());
    expect_same_stats(serial1.stats, p1.stats, "trace 1");
    expect_same_stats(serial2.stats, p2.stats, "trace 2");
  }
}

TEST(ParallelChecker, MonitoredModelWorksToo) {
  // The engine is generic over the model concept, not just TtpcStarModel.
  ModelConfig cfg = config(guardian::Authority::kFullShifting);
  cfg.max_out_of_slot_errors = 1;
  MonitoredModel model(cfg);
  auto serial = Checker(model).check(replay_victim_freezes());
  ParallelChecker checker(model, 4);
  auto parallel = checker.check(replay_victim_freezes());
  EXPECT_EQ(serial.holds(), parallel.holds());
  EXPECT_EQ(serial.trace.size(), parallel.trace.size());
  expect_same_stats(serial.stats, parallel.stats, "monitored");
}

TEST(ParallelChecker, RecoverabilityMatchesSerialOnExhaustiveRuns) {
  struct Case {
    guardian::Authority authority;
    bool allow_reinit;
  } cases[] = {
      {guardian::Authority::kSmallShifting, false},
      {guardian::Authority::kFullShifting, false},
      {guardian::Authority::kFullShifting, true},
  };
  for (const Case& c : cases) {
    ModelConfig cfg = config(c.authority);
    cfg.max_out_of_slot_errors = 1;
    cfg.protocol.allow_reinit = c.allow_reinit;
    TtpcStarModel model(cfg);
    auto all_active = [&model](const WorldState& w) {
      for (std::size_t i = 0; i < model.num_nodes(); ++i) {
        if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
      }
      return true;
    };
    auto serial = Checker(model).check_recoverability(all_active);
    ASSERT_TRUE(serial.stats.exhausted);
    for (unsigned threads : {2u, 5u}) {
      ParallelChecker checker(model, threads);
      auto parallel = checker.check_recoverability(all_active);
      EXPECT_EQ(serial.recoverable_everywhere,
                parallel.recoverable_everywhere)
          << "threads=" << threads;
      EXPECT_EQ(serial.dead_states, parallel.dead_states)
          << "threads=" << threads;
      EXPECT_EQ(serial.stats.states_explored,
                parallel.stats.states_explored);
      EXPECT_EQ(serial.stats.transitions, parallel.stats.transitions);
      EXPECT_TRUE(parallel.stats.exhausted);
      if (!serial.recoverable_everywhere) {
        // Witness enters the dead region at the same minimal depth.
        EXPECT_EQ(serial.witness.size(), parallel.witness.size());
        ASSERT_FALSE(parallel.witness.empty());
        EXPECT_EQ(parallel.witness.front().before, model.initial());
        for (std::size_t i = 1; i < parallel.witness.size(); ++i) {
          EXPECT_EQ(parallel.witness[i - 1].after,
                    parallel.witness[i].before);
        }
      }
    }
  }
}

TEST(ParallelChecker, RecoverabilityBudgetBailIsExplicit) {
  ModelConfig cfg = config(guardian::Authority::kFullShifting);
  cfg.max_out_of_slot_errors = 1;
  TtpcStarModel model(cfg);
  auto all_active = [&model](const WorldState& w) {
    for (std::size_t i = 0; i < model.num_nodes(); ++i) {
      if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
    }
    return true;
  };
  ParallelChecker checker(model, 2);
  auto res = checker.check_recoverability(all_active, /*max_states=*/1'000);
  EXPECT_FALSE(res.stats.exhausted);
  EXPECT_FALSE(res.recoverable_everywhere);  // withheld, not fabricated
  EXPECT_EQ(res.dead_states, 0u);
  EXPECT_TRUE(res.witness.empty());
  EXPECT_GT(res.stats.seconds, 0.0);
}

TEST(ParallelChecker, TinyInitialTableGrowsThroughOverflow) {
  // Start from a 64-slot table with proactive growth disabled, so every
  // expanding level saturates mid-flight and must take the overflow ->
  // drop-partial-level -> rebuild -> retry path; ~111k states later the
  // stats must still be bit-identical to the serial reference.
  TtpcStarModel model(config(guardian::Authority::kPassive));
  auto serial = Checker(model).check(no_integrated_node_freezes());
  ParallelChecker checker(model, 4, /*initial_capacity=*/64);
  checker.set_growth_headroom(0);
  auto parallel = checker.check(no_integrated_node_freezes());
  EXPECT_TRUE(parallel.holds());
  expect_same_stats(serial.stats, parallel.stats, "growth");
}

TEST(ParallelChecker, FiveNodeClusterCrossValidates) {
  // The bench headline workload in miniature: 5-node small-shifting
  // exhaustive verification, serial vs parallel.
  ModelConfig cfg = config(guardian::Authority::kSmallShifting);
  cfg.protocol.num_nodes = 5;
  cfg.protocol.num_slots = 5;
  // Keep the state space test-sized: no transient silence/bad-frame faults.
  cfg.allow_silence_fault = false;
  cfg.allow_bad_frame_fault = false;
  TtpcStarModel model(cfg);
  auto serial = Checker(model).check(no_integrated_node_freezes());
  ParallelChecker checker(model);  // hardware concurrency default
  auto parallel = checker.check(no_integrated_node_freezes());
  EXPECT_TRUE(serial.holds());
  EXPECT_TRUE(parallel.holds());
  expect_same_stats(serial.stats, parallel.stats, "5-node");
}

}  // namespace
}  // namespace tta::mc
