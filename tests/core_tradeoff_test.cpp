#include "core/tradeoff.h"

#include <gtest/gtest.h>

#include "analysis/equations.h"

namespace tta::core {
namespace {

TEST(TradeoffAnalyzer, TtpcDefaultMatchesPaperInputs) {
  DesignPoint p = TradeoffAnalyzer::ttpc_default();
  EXPECT_EQ(p.f_min_bits, 28);
  EXPECT_EQ(p.f_max_bits, 2076);
  EXPECT_EQ(p.le_bits, 4u);
  EXPECT_DOUBLE_EQ(p.rho, 0.0002);
}

TEST(TradeoffAnalyzer, TtpcDefaultIsFeasibleWithSlack) {
  DesignReport r = TradeoffAnalyzer::analyze(TradeoffAnalyzer::ttpc_default());
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.b_min_bits, 4.0 + 0.0002 * 2076.0);
  EXPECT_EQ(r.b_max_bits, 27);
  EXPECT_GT(r.slack_bits, 20.0);
}

TEST(TradeoffAnalyzer, ReportsAllHeadrooms) {
  DesignReport r = TradeoffAnalyzer::analyze(TradeoffAnalyzer::ttpc_default());
  EXPECT_NEAR(r.max_rho, 0.0111, 0.0001);           // eq (9)
  EXPECT_DOUBLE_EQ(r.max_f_max_bits, 115'000.0);    // eq (6)
  EXPECT_DOUBLE_EQ(r.max_clock_ratio,
                   analysis::max_clock_ratio(2076, 28, 4));
}

TEST(TradeoffAnalyzer, InfeasibleDesignReported) {
  DesignPoint p;
  p.f_min_bits = 28;
  p.f_max_bits = 2076;
  p.rho = 0.05;  // 5% skew cannot hide behind a 27-bit buffer
  DesignReport r = TradeoffAnalyzer::analyze(p);
  EXPECT_FALSE(r.feasible);
  EXPECT_LT(r.slack_bits, 0.0);
}

TEST(TradeoffAnalyzer, ZeroRhoSkipsFrameHeadroom) {
  DesignPoint p = TradeoffAnalyzer::ttpc_default();
  p.rho = 0.0;
  DesignReport r = TradeoffAnalyzer::analyze(p);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.max_f_max_bits, 0.0);  // unbounded; reported as "not computed"
}

TEST(TradeoffAnalyzer, RenderMentionsVerdictAndEquations) {
  DesignPoint p = TradeoffAnalyzer::ttpc_default();
  DesignReport r = TradeoffAnalyzer::analyze(p);
  std::string text = TradeoffAnalyzer::render(p, r);
  EXPECT_NE(text.find("FEASIBLE"), std::string::npos);
  EXPECT_NE(text.find("B_min"), std::string::npos);
  EXPECT_NE(text.find("eq 10"), std::string::npos);

  p.rho = 0.05;
  r = TradeoffAnalyzer::analyze(p);
  text = TradeoffAnalyzer::render(p, r);
  EXPECT_NE(text.find("INFEASIBLE"), std::string::npos);
}

}  // namespace
}  // namespace tta::core
