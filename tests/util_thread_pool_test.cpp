#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tta::util {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.run_tasks(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  pool.run_tasks(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // no race: everything inline
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForCoversTheRangeWithoutOverlap) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](unsigned, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunkBoundariesAreDeterministic) {
  // Chunking depends only on (n, pool size) — the property that makes
  // index-addressed outputs reproduce sequential results exactly.
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> bounds_a(4), bounds_b(4);
  pool.parallel_for(103, [&](unsigned c, std::size_t b, std::size_t e) {
    bounds_a[c] = {b, e};
  });
  pool.parallel_for(103, [&](unsigned c, std::size_t b, std::size_t e) {
    bounds_b[c] = {b, e};
  });
  EXPECT_EQ(bounds_a, bounds_b);
  std::size_t covered = 0;
  for (auto [b, e] : bounds_a) covered += e - b;
  EXPECT_EQ(covered, 103u);
}

TEST(ThreadPool, SumReductionMatchesSequential) {
  ThreadPool pool;  // hardware default
  std::vector<std::uint64_t> partial(pool.size(), 0);
  pool.parallel_for(10000, [&](unsigned c, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) partial[c] += i;
  });
  std::uint64_t total = std::accumulate(partial.begin(), partial.end(),
                                        std::uint64_t{0});
  EXPECT_EQ(total, 10000ull * 9999 / 2);
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.run_tasks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  pool.parallel_for(0, [&](unsigned, std::size_t, std::size_t) {
    ran = true;
  });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, FirstTaskExceptionIsRethrownAfterJoin) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run_tasks(50,
                     [&](std::size_t i) {
                       if (i == 13) throw std::runtime_error("boom");
                       completed.fetch_add(1);
                     }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 49);  // every other task still ran
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.run_tasks(8, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 28);
  }
}

}  // namespace
}  // namespace tta::util
