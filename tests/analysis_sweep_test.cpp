#include "analysis/sweep.h"

#include <gtest/gtest.h>

#include "analysis/equations.h"

namespace tta::analysis {
namespace {

TEST(Figure3, SeriesCoverConfiguredFmins) {
  auto series = figure3(Figure3Config{});
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].f_min, 8);
  EXPECT_EQ(series[1].f_min, 28);
  EXPECT_EQ(series[2].f_min, 128);
}

TEST(Figure3, PointsSkipFmaxBelowFmin) {
  auto series = figure3(Figure3Config{});
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      EXPECT_GE(p.f_max, s.f_min);
    }
  }
}

TEST(Figure3, CurveDecreasesTowardOne) {
  // ratio = f_max / (f_max - c) with c = f_min - 1 - le > 0 is strictly
  // decreasing in f_max and approaches 1 — the shape visible in Figure 3.
  Figure3Config cfg;
  cfg.f_min_values = {28};
  auto series = figure3(cfg);
  const auto& pts = series[0].points;
  ASSERT_GT(pts.size(), 4u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].clock_ratio_limit, pts[i - 1].clock_ratio_limit);
  }
  EXPECT_GT(pts.back().clock_ratio_limit, 1.0);
}

TEST(Figure3, WiderFrameRangeMeansNarrowerClockRange) {
  // The paper's headline sentence: "systems with a wide range of frame
  // lengths cannot also have a wide range of clock rates." At fixed f_max,
  // a larger f_min (narrower range) allows a larger clock ratio.
  Figure3Config cfg;
  cfg.f_min_values = {8, 28, 128};
  cfg.f_max_from = 512;
  cfg.f_max_to = 512;
  auto series = figure3(cfg);
  double r8 = series[0].points.at(0).clock_ratio_limit;
  double r28 = series[1].points.at(0).clock_ratio_limit;
  double r128 = series[2].points.at(0).clock_ratio_limit;
  EXPECT_LT(r8, r28);
  EXPECT_LT(r28, r128);
}

TEST(Figure3, PointsMatchEquationTen) {
  auto series = figure3(Figure3Config{});
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      EXPECT_DOUBLE_EQ(p.clock_ratio_limit,
                       max_clock_ratio(p.f_max, s.f_min, 4));
    }
  }
}

TEST(Figure3, GeometricStrideProducesNoDuplicates) {
  auto series = figure3(Figure3Config{});
  for (const auto& s : series) {
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      EXPECT_GT(s.points[i].f_max, s.points[i - 1].f_max);
    }
  }
}

TEST(WorkedExamples, ReportContainsThePaperNumbers) {
  std::string report = section6_worked_examples();
  EXPECT_NE(report.find("0.0002"), std::string::npos);   // eq (5)
  EXPECT_NE(report.find("115000"), std::string::npos);   // eq (6)
  EXPECT_NE(report.find("0.3026"), std::string::npos);   // eq (8)
  EXPECT_NE(report.find("0.0111"), std::string::npos);   // eq (9)
  EXPECT_NE(report.find("25.6"), std::string::npos);     // eq (10) at 128
}

}  // namespace
}  // namespace tta::analysis
