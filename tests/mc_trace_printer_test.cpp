#include "mc/trace_printer.h"

#include <gtest/gtest.h>

#include "mc/checker.h"

namespace tta::mc {
namespace {

ModelConfig violating_config() {
  ModelConfig cfg;
  cfg.authority = guardian::Authority::kFullShifting;
  cfg.max_out_of_slot_errors = 1;
  return cfg;
}

class TracePrinterTest : public ::testing::Test {
 protected:
  TracePrinterTest() : model_(violating_config()), printer_(model_) {
    result_ = Checker(model_).check(no_integrated_node_freezes());
  }
  TtpcStarModel model_;
  TracePrinter printer_;
  CheckResult result_;
};

TEST_F(TracePrinterTest, NarrationIsNumberedAndOrdered) {
  std::string story = printer_.narrate(result_.trace);
  // Numbered entries in ascending order, paper style.
  std::size_t p1 = story.find(" 1)");
  std::size_t p2 = story.find(" 2)");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  EXPECT_LT(p1, p2);
}

TEST_F(TracePrinterTest, NarrationStartsWithTheInitialState) {
  std::string story = printer_.narrate(result_.trace);
  EXPECT_EQ(story.find("Initially, all nodes are in the freeze state"),
            story.find("1)") + 3);
}

TEST_F(TracePrinterTest, QuietSlotsAreCompressed) {
  // Listen-timeout countdowns must be merged, not listed slot by slot:
  // fewer per-step narration items (each carries a "ch0=" header) than
  // trace steps.
  std::string story = printer_.narrate(result_.trace);
  EXPECT_NE(story.find("quiet slot(s) pass"), std::string::npos);
  long items = 0;
  for (std::size_t pos = story.find("ch0="); pos != std::string::npos;
       pos = story.find("ch0=", pos + 1)) {
    ++items;
  }
  EXPECT_LT(items, static_cast<long>(result_.trace.size()));
}

TEST_F(TracePrinterTest, NodesAreLetteredLikeThePaper) {
  std::string story = printer_.narrate(result_.trace);
  EXPECT_NE(story.find("Node A"), std::string::npos);
  EXPECT_NE(story.find("Node B") != std::string::npos ||
                story.find("Node C") != std::string::npos ||
                story.find("Node D") != std::string::npos,
            false);
}

TEST_F(TracePrinterTest, FaultStepsAreCalledOut) {
  std::string story = printer_.narrate(result_.trace);
  EXPECT_NE(story.find("replays the buffered"), std::string::npos);
}

TEST_F(TracePrinterTest, TableHasOneRowPerStep) {
  std::string table = printer_.table(result_.trace);
  long newlines = std::count(table.begin(), table.end(), '\n');
  EXPECT_EQ(newlines, static_cast<long>(result_.trace.size()) + 1);  // +header
}

TEST_F(TracePrinterTest, TableShowsChannelsAndStates) {
  std::string table = printer_.table(result_.trace);
  EXPECT_NE(table.find("ch0"), std::string::npos);
  EXPECT_NE(table.find("freeze"), std::string::npos);
  EXPECT_NE(table.find("cold_start"), std::string::npos);
}

TEST_F(TracePrinterTest, EmptyTraceNarratesOnlyTheInitialLine) {
  std::string story = printer_.narrate({});
  EXPECT_NE(story.find("Initially"), std::string::npos);
  EXPECT_EQ(story.find(" 2)"), std::string::npos);
}

}  // namespace
}  // namespace tta::mc
