#include "util/table.h"

#include <gtest/gtest.h>

namespace tta::util {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"a", "b"});
  t.add_row({"wide-cell", "x"});
  t.add_row({"y", "z"});
  std::string out = t.render();
  // Every 'b'-column entry starts at the same offset on its line.
  std::size_t header_b = out.find('b');
  std::size_t line2 = out.find('\n', out.find('\n') + 1) + 1;  // first row
  EXPECT_EQ(out[line2 + header_b], 'x');
}

TEST(Table, NumTrimsTrailingZeros) {
  EXPECT_EQ(Table::num(1.5), "1.5");
  EXPECT_EQ(Table::num(2.0), "2");
  EXPECT_EQ(Table::num(0.25, 2), "0.25");
  EXPECT_EQ(Table::num(0.1, 1), "0.1");
  EXPECT_EQ(Table::num(-3.1400, 4), "-3.14");
}

TEST(Table, NumRespectsDigitBudget) {
  EXPECT_EQ(Table::num(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(Table::num(2.0 / 3.0, 2), "0.67");
}

TEST(Table, EmptyTableRendersHeaderOnly) {
  Table t({"only"});
  std::string out = t.render();
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(t.rows(), 0u);
}

}  // namespace
}  // namespace tta::util
