#include "core/buffer_policy.h"

#include <gtest/gtest.h>

namespace tta::core {
namespace {

BufferPolicyParams ttpc() { return BufferPolicyParams{}; }

TEST(BufferPolicy, ZeroBitsIsPassive) {
  BufferClass c = classify_buffer(0, ttpc());
  EXPECT_FALSE(c.can_forward_gaplessly);
  EXPECT_FALSE(c.can_analyze_semantics);
  EXPECT_FALSE(c.holds_whole_frame);
  EXPECT_TRUE(c.respects_bmax);
  EXPECT_EQ(c.induced_authority, guardian::Authority::kPassive);
}

TEST(BufferPolicy, BmaxBudgetIsTheSweetSpot) {
  // 27 bits (f_min - 1): everything the paper wants, nothing it forbids.
  BufferClass c = classify_buffer(27, ttpc());
  EXPECT_TRUE(c.can_forward_gaplessly);   // B_min = 4.42 at TTP/C defaults
  EXPECT_TRUE(c.can_analyze_semantics);   // >= 16 inspection bits
  EXPECT_FALSE(c.holds_whole_frame);
  EXPECT_TRUE(c.respects_bmax);
  EXPECT_EQ(c.induced_authority, guardian::Authority::kSmallShifting);
}

TEST(BufferPolicy, OneMoreBitMakesAFrameStore) {
  BufferClass c = classify_buffer(28, ttpc());
  EXPECT_TRUE(c.holds_whole_frame);
  EXPECT_FALSE(c.respects_bmax);
  EXPECT_EQ(c.induced_authority, guardian::Authority::kFullShifting);
}

TEST(BufferPolicy, SmallBudgetForwardsButCannotInspect) {
  BufferClass c = classify_buffer(8, ttpc());
  EXPECT_TRUE(c.can_forward_gaplessly);
  EXPECT_FALSE(c.can_analyze_semantics);
  EXPECT_EQ(c.induced_authority, guardian::Authority::kTimeWindows);
}

TEST(BufferPolicy, LooseClocksRaiseTheForwardingThreshold) {
  BufferPolicyParams loose = ttpc();
  loose.rho = 0.01;  // B_min = 4 + 20.76 = 24.76
  EXPECT_FALSE(classify_buffer(24, loose).can_forward_gaplessly);
  EXPECT_TRUE(classify_buffer(25, loose).can_forward_gaplessly);
}

TEST(BufferPolicy, InfeasibleDesignHasNoSafeSemanticBudget) {
  // rho so large that B_min exceeds B_max: any budget that can forward
  // gaplessly is already a frame store — the eq (4) infeasibility, visible
  // as a gap in the policy table.
  BufferPolicyParams broken = ttpc();
  broken.rho = 0.02;  // B_min = 45.5 > B_max = 27
  for (const BufferClass& c : buffer_policy_table(broken)) {
    EXPECT_FALSE(c.can_forward_gaplessly && c.respects_bmax)
        << "budget " << c.buffer_bits;
  }
}

TEST(BufferPolicy, TableCoversTheThresholds) {
  auto rows = buffer_policy_table(ttpc());
  ASSERT_GE(rows.size(), 5u);
  // Strictly increasing budgets.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].buffer_bits, rows[i - 1].buffer_bits);
  }
  // Authority is monotone in budget.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(static_cast<int>(rows[i].induced_authority),
              static_cast<int>(rows[i - 1].induced_authority));
  }
  // The last row (a whole f_max buffer) is a frame store.
  EXPECT_TRUE(rows.back().holds_whole_frame);
}

TEST(BufferPolicy, RenderContainsVerdictColumns) {
  std::string table = render_buffer_policy(buffer_policy_table(ttpc()));
  EXPECT_NE(table.find("induced authority"), std::string::npos);
  EXPECT_NE(table.find("full_shifting"), std::string::npos);
  EXPECT_NE(table.find("small_shifting"), std::string::npos);
}

}  // namespace
}  // namespace tta::core
