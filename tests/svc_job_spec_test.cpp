// JobSpec canonical encoding, digest stability, cost model, and the
// JSON-lines parser used by tta_verify_batch.
#include <gtest/gtest.h>

#include "svc/job_spec.h"
#include "svc/wire.h"
#include "util/digest.h"

namespace tta::svc {
namespace {

JobSpec spec_for(guardian::Authority a) {
  JobSpec spec;
  spec.model.authority = a;
  spec.property = Property::kNoIntegratedNodeFreezes;
  return spec;
}

TEST(JobSpec, CanonicalEncodingIsVersionedAndDeterministic) {
  JobSpec spec = spec_for(guardian::Authority::kPassive);
  auto bytes = spec.canonical_bytes();
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes[0], 1u);  // format version
  EXPECT_EQ(bytes, spec.canonical_bytes());
}

TEST(JobSpec, DigestIsStableAcrossProcessRuns) {
  // Known-answer digests for the four E1 cells with default model options.
  // These are cache keys: they must be identical in every process and on
  // every build, or a persisted/shared cache would silently re-verify.
  // If this test fails, either the canonical encoding changed without a
  // version-byte bump, or a ModelConfig default changed (which re-keys
  // every cached result — bump the version byte and re-pin).
  EXPECT_EQ(util::digest_hex(spec_for(guardian::Authority::kPassive).digest()),
            "221e92ae876e7849");
  EXPECT_EQ(
      util::digest_hex(spec_for(guardian::Authority::kTimeWindows).digest()),
      "1e6b526deb0317d2");
  EXPECT_EQ(
      util::digest_hex(spec_for(guardian::Authority::kSmallShifting).digest()),
      "d71b23a6af9d863f");
  EXPECT_EQ(
      util::digest_hex(spec_for(guardian::Authority::kFullShifting).digest()),
      "c5ad33433f8bfb00");
}

TEST(JobSpec, DigestCoversSemanticFieldsOnly) {
  const JobSpec base = spec_for(guardian::Authority::kFullShifting);

  // Execution hints must not re-key the cache: either engine at any thread
  // count or deadline answers the same semantic query.
  JobSpec hints = base;
  hints.engine = EngineChoice::kParallel;
  hints.threads = 8;
  hints.deadline_ms = 1234;
  hints.table_backend = mc::TableBackend::kCompact;
  EXPECT_EQ(hints.digest(), base.digest());

  // Semantic fields must re-key.
  JobSpec other = base;
  other.property = Property::kRecoverability;
  EXPECT_NE(other.digest(), base.digest());
  other = base;
  other.max_states = 1'000;
  EXPECT_NE(other.digest(), base.digest());
  other = base;
  other.model.max_out_of_slot_errors = 1;
  EXPECT_NE(other.digest(), base.digest());
  other = base;
  other.model.protocol.allow_reinit = !other.model.protocol.allow_reinit;
  EXPECT_NE(other.digest(), base.digest());
}

TEST(JobSpec, OutOfSlotBudgetSaturatesLikeTheModel) {
  // The packed state stores min(oos, 7); budgets past that are equivalent
  // queries and must share a digest.
  JobSpec a = spec_for(guardian::Authority::kFullShifting);
  JobSpec b = a;
  a.model.max_out_of_slot_errors = 7;
  b.model.max_out_of_slot_errors = 100;
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(JobSpec, CostModelOrdersTheObviousCases) {
  JobSpec small = spec_for(guardian::Authority::kPassive);
  JobSpec large = small;
  large.model.protocol.num_nodes = 5;
  large.model.protocol.num_slots = 5;
  EXPECT_LT(small.estimated_cost(), large.estimated_cost());

  // Buffering enlarges the space (replay interleavings).
  EXPECT_LT(small.estimated_cost(),
            spec_for(guardian::Authority::kFullShifting).estimated_cost());

  // Recoverability adds a second pass over the graph.
  JobSpec recov = small;
  recov.property = Property::kRecoverability;
  EXPECT_LT(small.estimated_cost(), recov.estimated_cost());

  // Disabling transient fault modes shrinks the space.
  JobSpec lean = small;
  lean.model.allow_silence_fault = false;
  lean.model.allow_bad_frame_fault = false;
  EXPECT_LT(lean.estimated_cost(), small.estimated_cost());
}

TEST(JobSpecParse, AcceptsFullJobLine) {
  JobSpec spec;
  std::string error;
  ASSERT_TRUE(parse_job_line(
      R"({"authority": "full_shifting", "property": "recoverability",)"
      R"( "engine": "parallel", "nodes": 5, "max_oos": 1,)"
      R"( "allow_reinit": false, "max_states": 1000000,)"
      R"( "deadline_ms": 250, "threads": 4})",
      &spec, &error))
      << error;
  EXPECT_EQ(spec.model.authority, guardian::Authority::kFullShifting);
  EXPECT_EQ(spec.property, Property::kRecoverability);
  EXPECT_EQ(spec.engine, EngineChoice::kParallel);
  EXPECT_EQ(spec.model.protocol.num_nodes, 5u);
  EXPECT_GE(spec.model.protocol.num_slots, 5u);
  EXPECT_EQ(spec.model.max_out_of_slot_errors, 1u);
  EXPECT_FALSE(spec.model.protocol.allow_reinit);
  EXPECT_EQ(spec.max_states, 1'000'000u);
  EXPECT_EQ(spec.deadline_ms, 250u);
  EXPECT_EQ(spec.threads, 4u);
}

TEST(JobSpecParse, TableBackendIsAnExecutionHint) {
  // "table" selects the visited-table layout; like engine/threads it must
  // parse, steer execution, and stay out of the semantic digest.
  JobSpec spec;
  std::string error;
  ASSERT_TRUE(parse_job_line(R"({"authority": "passive", "table": "compact"})",
                             &spec, &error))
      << error;
  EXPECT_EQ(spec.table_backend, mc::TableBackend::kCompact);
  EXPECT_EQ(spec.digest(), spec_for(guardian::Authority::kPassive).digest());

  ASSERT_TRUE(parse_job_line(R"({"authority": "passive", "table": "flat"})",
                             &spec, &error))
      << error;
  EXPECT_EQ(spec.table_backend, mc::TableBackend::kFlat);

  EXPECT_FALSE(parse_job_line(R"({"authority": "passive", "table": "tiny"})",
                              &spec, &error));
  EXPECT_FALSE(parse_job_line(R"({"authority": "passive", "table": 1})",
                              &spec, &error));
}

TEST(JobSpecParse, DefaultsMatchDefaultSpec) {
  JobSpec parsed;
  std::string error;
  ASSERT_TRUE(parse_job_line(R"({"authority": "passive"})", &parsed, &error))
      << error;
  EXPECT_EQ(parsed.digest(), spec_for(guardian::Authority::kPassive).digest());
}

TEST(JobSpecParse, RejectsMalformedInput) {
  JobSpec spec;
  std::string error;
  // Unknown keys are almost always typos — hard error, not a warning.
  EXPECT_FALSE(parse_job_line(R"({"authorty": "passive"})", &spec, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_job_line(R"({"authority": "buffered"})", &spec, &error));
  EXPECT_FALSE(parse_job_line(R"({"property": "liveness"})", &spec, &error));
  EXPECT_FALSE(parse_job_line(R"({"nodes": 7})", &spec, &error));  // > kMaxNodes
  EXPECT_FALSE(parse_job_line(R"({"nodes": 4, "slots": 2})", &spec, &error));
  EXPECT_FALSE(parse_job_line(R"({"max_oos": 9})", &spec, &error));
  EXPECT_FALSE(parse_job_line("not json", &spec, &error));
  EXPECT_FALSE(parse_job_line(R"({"authority": "passive"} extra)", &spec,
                              &error));
  EXPECT_FALSE(parse_job_line(R"({"authority": "passive")", &spec, &error));
}

}  // namespace
}  // namespace tta::svc
