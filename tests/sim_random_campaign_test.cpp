// Randomized fault-injection campaigns, cross-validating the model
// checker's verdicts in the simulator: whatever schedule of silence and
// bad-frame coupler faults we throw at a non-buffering star (one faulty
// coupler at a time), no healthy node may ever be clique-frozen — the
// simulated mirror of the exhaustively verified property. And the same
// campaign with out-of-slot faults against a full-shifting coupler *does*
// find victims.
//
// The independent simulations fan out over a util::ThreadPool (results
// collected into index-addressed slots, assertions on the main thread);
// schedules are drawn sequentially from the shared RNG first, so the
// campaigns are identical to the old sequential loops.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cluster.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tta::sim {
namespace {

FaultInjector random_coupler_schedule(util::Rng& rng, bool include_replay,
                                      std::uint64_t horizon) {
  FaultInjector fi;
  // A few dozen transient windows, alternating channels, never overlapping
  // across channels (the TTP/C single-faulty-coupler hypothesis).
  std::uint64_t t = rng.next_below(10);
  while (t < horizon) {
    auto duration = 1 + rng.next_below(6);
    int channel = static_cast<int>(rng.next_below(2));
    guardian::CouplerFault fault;
    switch (rng.next_below(include_replay ? 3 : 2)) {
      case 0:
        fault = guardian::CouplerFault::kSilence;
        break;
      case 1:
        fault = guardian::CouplerFault::kBadFrame;
        break;
      default:
        fault = guardian::CouplerFault::kOutOfSlot;
        break;
    }
    fi.add(CouplerFaultWindow{channel, fault, t, t + duration - 1});
    t += duration + rng.next_below(8);
  }
  return fi;
}

class RandomCampaign : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCampaign, NonBufferingCouplerNeverFreezesHealthyNodes) {
  constexpr guardian::Authority kAuthorities[] = {
      guardian::Authority::kPassive, guardian::Authority::kTimeWindows,
      guardian::Authority::kSmallShifting};

  // Draw all three schedules from the shared RNG up front (order matters),
  // then run the three clusters concurrently.
  util::Rng rng(GetParam());
  std::vector<FaultInjector> schedules;
  for (std::size_t i = 0; i < std::size(kAuthorities); ++i) {
    schedules.push_back(
        random_coupler_schedule(rng, /*include_replay=*/true, 600));
  }

  struct Outcome {
    std::size_t healthy_frozen = 0;
    std::uint64_t replay_integrations = 0;
  };
  std::vector<Outcome> outcomes(std::size(kAuthorities));
  util::ThreadPool pool;
  pool.run_tasks(std::size(kAuthorities), [&](std::size_t i) {
    ClusterConfig cfg;
    cfg.topology = Topology::kStar;
    cfg.guardian.authority = kAuthorities[i];
    cfg.keep_log = false;
    Cluster cluster(cfg, std::move(schedules[i]));
    cluster.run(800);
    outcomes[i] = {cluster.healthy_clique_frozen(),
                   cluster.metrics().replay_integrations};
  });

  for (std::size_t i = 0; i < std::size(kAuthorities); ++i) {
    EXPECT_EQ(outcomes[i].healthy_frozen, 0u)
        << "seed=" << GetParam()
        << " authority=" << guardian::to_string(kAuthorities[i]);
    EXPECT_EQ(outcomes[i].replay_integrations, 0u);
  }
}

TEST_P(RandomCampaign, ClusterAlwaysRecoversAfterTransientFaults) {
  // Availability: once the fault schedule is exhausted, the cluster must
  // return to (or remain in) full operation.
  util::Rng rng(GetParam() ^ 0xABCDEF);
  ClusterConfig cfg;
  cfg.topology = Topology::kStar;
  cfg.guardian.authority = guardian::Authority::kSmallShifting;
  cfg.keep_log = false;
  Cluster cluster(cfg,
                  random_coupler_schedule(rng, /*include_replay=*/false,
                                          400));
  cluster.run(900);  // 400 steps of faults + 500 quiet steps
  EXPECT_TRUE(cluster.all_healthy_in_state(ttpc::CtrlState::kActive))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCampaign,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(ReplayCampaign, FullShiftingEventuallyHurtsSomeSeed) {
  // The dual direction: against a *buffering* coupler, random replay
  // schedules do find victims (matching the model checker's VIOLATED
  // verdict). Not every seed hits the integration window, so we assert
  // over the ensemble — each seed owns its RNG, so the 20 runs are
  // independent and fan out over the pool.
  constexpr std::uint64_t kSeeds = 20;
  // Not vector<bool>: adjacent packed bits would race across threads.
  std::vector<unsigned char> damaged(kSeeds, 0);
  util::ThreadPool pool;
  pool.run_tasks(kSeeds, [&](std::size_t i) {
    util::Rng rng(i + 1);
    ClusterConfig cfg;
    cfg.topology = Topology::kStar;
    cfg.guardian.authority = guardian::Authority::kFullShifting;
    cfg.keep_log = false;
    Cluster cluster(cfg,
                    random_coupler_schedule(rng, /*include_replay=*/true,
                                            600));
    cluster.run(800);
    damaged[i] = cluster.healthy_clique_frozen() > 0 ||
                 cluster.metrics().replay_integrations > 0;
  });
  std::size_t damaged_runs = 0;
  for (unsigned char d : damaged) damaged_runs += d;
  EXPECT_GT(damaged_runs, 0u);
}

}  // namespace
}  // namespace tta::sim
