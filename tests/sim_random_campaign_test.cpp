// Randomized fault-injection campaigns, cross-validating the model
// checker's verdicts in the simulator: whatever schedule of silence and
// bad-frame coupler faults we throw at a non-buffering star (one faulty
// coupler at a time), no healthy node may ever be clique-frozen — the
// simulated mirror of the exhaustively verified property. And the same
// campaign with out-of-slot faults against a full-shifting coupler *does*
// find victims.
#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "util/rng.h"

namespace tta::sim {
namespace {

FaultInjector random_coupler_schedule(util::Rng& rng, bool include_replay,
                                      std::uint64_t horizon) {
  FaultInjector fi;
  // A few dozen transient windows, alternating channels, never overlapping
  // across channels (the TTP/C single-faulty-coupler hypothesis).
  std::uint64_t t = rng.next_below(10);
  while (t < horizon) {
    auto duration = 1 + rng.next_below(6);
    int channel = static_cast<int>(rng.next_below(2));
    guardian::CouplerFault fault;
    switch (rng.next_below(include_replay ? 3 : 2)) {
      case 0:
        fault = guardian::CouplerFault::kSilence;
        break;
      case 1:
        fault = guardian::CouplerFault::kBadFrame;
        break;
      default:
        fault = guardian::CouplerFault::kOutOfSlot;
        break;
    }
    fi.add(CouplerFaultWindow{channel, fault, t, t + duration - 1});
    t += duration + rng.next_below(8);
  }
  return fi;
}

class RandomCampaign : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCampaign, NonBufferingCouplerNeverFreezesHealthyNodes) {
  util::Rng rng(GetParam());
  for (guardian::Authority a : {guardian::Authority::kPassive,
                                guardian::Authority::kTimeWindows,
                                guardian::Authority::kSmallShifting}) {
    ClusterConfig cfg;
    cfg.topology = Topology::kStar;
    cfg.guardian.authority = a;
    cfg.keep_log = false;
    Cluster cluster(cfg,
                    random_coupler_schedule(rng, /*include_replay=*/true,
                                            600));
    cluster.run(800);
    EXPECT_EQ(cluster.healthy_clique_frozen(), 0u)
        << "seed=" << GetParam() << " authority=" << guardian::to_string(a);
    EXPECT_EQ(cluster.metrics().replay_integrations, 0u);
  }
}

TEST_P(RandomCampaign, ClusterAlwaysRecoversAfterTransientFaults) {
  // Availability: once the fault schedule is exhausted, the cluster must
  // return to (or remain in) full operation.
  util::Rng rng(GetParam() ^ 0xABCDEF);
  ClusterConfig cfg;
  cfg.topology = Topology::kStar;
  cfg.guardian.authority = guardian::Authority::kSmallShifting;
  cfg.keep_log = false;
  Cluster cluster(cfg,
                  random_coupler_schedule(rng, /*include_replay=*/false,
                                          400));
  cluster.run(900);  // 400 steps of faults + 500 quiet steps
  EXPECT_TRUE(cluster.all_healthy_in_state(ttpc::CtrlState::kActive))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCampaign,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(ReplayCampaign, FullShiftingEventuallyHurtsSomeSeed) {
  // The dual direction: against a *buffering* coupler, random replay
  // schedules do find victims (matching the model checker's VIOLATED
  // verdict). Not every seed hits the integration window, so we assert
  // over the ensemble.
  std::size_t damaged_runs = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    ClusterConfig cfg;
    cfg.topology = Topology::kStar;
    cfg.guardian.authority = guardian::Authority::kFullShifting;
    cfg.keep_log = false;
    Cluster cluster(cfg,
                    random_coupler_schedule(rng, /*include_replay=*/true,
                                            600));
    cluster.run(800);
    if (cluster.healthy_clique_frozen() > 0 ||
        cluster.metrics().replay_integrations > 0) {
      ++damaged_runs;
    }
  }
  EXPECT_GT(damaged_runs, 0u);
}

}  // namespace
}  // namespace tta::sim
