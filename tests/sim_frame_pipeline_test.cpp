#include "sim/frame_pipeline.h"

#include <gtest/gtest.h>

namespace tta::sim {
namespace {

FramePipeline pipe(int channel = 0) {
  return FramePipeline(channel, wire::LineCoding(4));
}

ttpc::CState state_a() { return ttpc::CState(100, 2, 0b0111); }
ttpc::CState state_b() { return ttpc::CState(101, 2, 0b0111); }  // time off

TEST(FramePipeline, AgreementYieldsCorrectExplicit) {
  FramePipeline p = pipe();
  auto wire = p.transmit(state_a(), /*explicit_cstate=*/true);
  auto r = p.receive(wire, state_a());
  EXPECT_EQ(r.status, FrameStatus::kCorrect);
  EXPECT_EQ(r.frame.header.type, wire::WireFrameType::kI);
  EXPECT_EQ(ttpc::CState::from_image(r.frame.cstate), state_a());
}

TEST(FramePipeline, AgreementYieldsCorrectImplicit) {
  FramePipeline p = pipe();
  auto wire = p.transmit(state_a(), /*explicit_cstate=*/false, {1, 2, 3});
  auto r = p.receive(wire, state_a());
  EXPECT_EQ(r.status, FrameStatus::kCorrect);
  EXPECT_EQ(r.frame.payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(FramePipeline, ExplicitDisagreementIsIncorrect) {
  // I-frame: the receiver decodes the frame fine and *sees* the C-state
  // mismatch — the "incorrect frame" that feeds the failed counter.
  FramePipeline p = pipe();
  auto wire = p.transmit(state_a(), true);
  auto r = p.receive(wire, state_b());
  EXPECT_EQ(r.status, FrameStatus::kIncorrect);
  EXPECT_EQ(ttpc::CState::from_image(r.frame.cstate), state_a());
}

TEST(FramePipeline, ImplicitDisagreementLooksLikeCorruption) {
  // N-frame: the C-state seeds the CRC, so a disagreement fails the CRC —
  // the receiver cannot distinguish it from a damaged frame. This is the
  // wire-level reason invalid and incorrect are different categories.
  FramePipeline p = pipe();
  auto wire = p.transmit(state_a(), false, {9, 9});
  auto r = p.receive(wire, state_b());
  EXPECT_EQ(r.status, FrameStatus::kInvalid);
}

TEST(FramePipeline, EmptySlotIsNull) {
  FramePipeline p = pipe();
  EXPECT_EQ(p.receive(wire::BitStream{}, state_a()).status,
            FrameStatus::kNull);
}

TEST(FramePipeline, CorruptionIsInvalidNeverIncorrect) {
  FramePipeline p = pipe();
  util::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    auto wire = p.transmit(state_a(), true);
    FramePipeline::corrupt(wire, rng, 1 + unsigned(rng.next_below(5)));
    auto r = p.receive(wire, state_a());
    EXPECT_TRUE(r.status == FrameStatus::kInvalid ||
                r.status == FrameStatus::kCorrect)  // flips may cancel: no
        << to_string(r.status);                     // false "incorrect"
    if (r.status == FrameStatus::kCorrect) {
      // Only possible if the flips restored the exact image — with
      // distinct positions that cannot happen.
      ADD_FAILURE() << "corrupted frame accepted";
    }
  }
}

TEST(FramePipeline, DamagedPreambleIsInvalid) {
  FramePipeline p = pipe();
  auto wire = p.transmit(state_a(), true);
  wire.flip_bit(0);  // first sync bit
  EXPECT_EQ(p.receive(wire, state_a()).status, FrameStatus::kInvalid);
}

TEST(FramePipeline, ColdStartRoundTripsScheduleFields) {
  FramePipeline p = pipe(1);
  auto wire = p.transmit_cold_start(77, 3);
  auto r = p.receive(wire, state_a());
  EXPECT_EQ(r.status, FrameStatus::kCorrect);
  EXPECT_EQ(r.frame.header.type, wire::WireFrameType::kColdStart);
  EXPECT_EQ(r.frame.cstate.global_time, 77);
  EXPECT_EQ(r.frame.round_slot, 3);
}

TEST(FramePipeline, ChannelsUseTheirOwnCrcSchedules) {
  FramePipeline p0 = pipe(0);
  FramePipeline p1 = pipe(1);
  auto wire0 = p0.transmit(state_a(), true);
  // A frame encoded for channel 0 fails channel 1's CRC schedule.
  EXPECT_EQ(p1.receive(wire0, state_a()).status, FrameStatus::kInvalid);
  EXPECT_EQ(p0.receive(wire0, state_a()).status, FrameStatus::kCorrect);
}

TEST(FramePipeline, MembershipDisagreementAlone) {
  // Same time and slot, one membership bit different — explicit frames
  // reveal it, implicit frames turn it into CRC garbage.
  ttpc::CState sender(100, 2, 0b0111);
  ttpc::CState receiver(100, 2, 0b0101);
  FramePipeline p = pipe();
  EXPECT_EQ(p.receive(p.transmit(sender, true), receiver).status,
            FrameStatus::kIncorrect);
  EXPECT_EQ(p.receive(p.transmit(sender, false), receiver).status,
            FrameStatus::kInvalid);
}

TEST(FramePipeline, StatusNames) {
  EXPECT_STREQ(to_string(FrameStatus::kNull), "null");
  EXPECT_STREQ(to_string(FrameStatus::kInvalid), "invalid");
  EXPECT_STREQ(to_string(FrameStatus::kIncorrect), "incorrect");
  EXPECT_STREQ(to_string(FrameStatus::kCorrect), "correct");
}

class BitErrorSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitErrorSweep, NoUndetectedCorruptionAcrossBurstSizes) {
  FramePipeline p = pipe();
  util::Rng rng(GetParam());
  ttpc::CState sender = state_a();
  int undetected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    auto wire = p.transmit(sender, true);
    FramePipeline::corrupt(wire, rng, GetParam());
    auto r = p.receive(wire, sender);
    if (r.status == FrameStatus::kCorrect ||
        r.status == FrameStatus::kIncorrect) {
      ++undetected;
    }
  }
  EXPECT_EQ(undetected, 0);
}

INSTANTIATE_TEST_SUITE_P(Flips, BitErrorSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 24u));

}  // namespace
}  // namespace tta::sim
