// Tests the controller state machine against the transition constraints of
// Section 4.3, clause by clause.
#include "ttpc/controller.h"

#include <gtest/gtest.h>

namespace tta::ttpc {
namespace {

ProtocolConfig four_nodes() { return ProtocolConfig{}; }

ChannelView silent() { return ChannelView{}; }

ChannelView on_both(FrameKind kind, SlotNumber id) {
  return ChannelView{ChannelFrame{kind, id}, ChannelFrame{kind, id}};
}

ChannelView on_ch0(FrameKind kind, SlotNumber id) {
  return ChannelView{ChannelFrame{kind, id}, ChannelFrame{}};
}

ChannelView on_ch1(FrameKind kind, SlotNumber id) {
  return ChannelView{ChannelFrame{}, ChannelFrame{kind, id}};
}

NodeState listen_state(std::uint8_t timeout, bool big_bang = false) {
  NodeState s;
  s.state = CtrlState::kListen;
  s.listen_timeout = timeout;
  s.big_bang = big_bang;
  return s;
}

// ----------------------------------------------------------- freeze/init --

TEST(Freeze, StaysFrozenOnChoiceZero) {
  Controller c(four_nodes());
  NodeState s;  // freeze
  auto out = c.step(s, 1, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kFreeze);
}

TEST(Freeze, TransitionsToInitOnChoiceOne) {
  Controller c(four_nodes());
  NodeState s;
  auto out = c.step(s, 1, silent(), 1);
  EXPECT_EQ(out.next.state, CtrlState::kInit);
  EXPECT_EQ(out.event, StepEvent::kEnteredInit);
}

TEST(Freeze, ReinitializationClearsAllVariables) {
  Controller c(four_nodes());
  NodeState s;
  s.agreed = 3;
  s.failed = 2;
  s.big_bang = true;
  s.slot = 3;
  auto out = c.step(s, 1, silent(), 1);
  EXPECT_EQ(out.next.agreed, 0);
  EXPECT_EQ(out.next.failed, 0);
  EXPECT_FALSE(out.next.big_bang);
}

TEST(Freeze, AwaitAndTestBranchesOnlyWhenModeled) {
  ProtocolConfig cfg = four_nodes();
  Controller restricted(cfg);
  EXPECT_EQ(restricted.num_choices(NodeState{}), 2u);

  cfg.model_await_test = true;
  Controller full(cfg);
  EXPECT_EQ(full.num_choices(NodeState{}), 4u);
  EXPECT_EQ(full.step(NodeState{}, 1, silent(), 2).next.state,
            CtrlState::kAwait);
  EXPECT_EQ(full.step(NodeState{}, 1, silent(), 3).next.state,
            CtrlState::kTest);
}

TEST(Init, ListenEntryLoadsTimeoutWithSlotsPlusNodeId) {
  // "initialized with the number of slots plus the number of the slot that
  // is assigned to the node" (Section 4.3.2).
  Controller c(four_nodes());
  NodeState s;
  s.state = CtrlState::kInit;
  for (NodeId id : {NodeId{1}, NodeId{3}, NodeId{4}}) {
    auto out = c.step(s, id, silent(), 1);
    EXPECT_EQ(out.next.state, CtrlState::kListen);
    EXPECT_EQ(out.next.listen_timeout, 4 + id);
    EXPECT_EQ(out.event, StepEvent::kEnteredListen);
  }
}

TEST(Init, HostFreezeBranchGatedByConfig) {
  ProtocolConfig cfg = four_nodes();
  NodeState s;
  s.state = CtrlState::kInit;
  EXPECT_EQ(Controller(cfg).num_choices(s), 2u);
  cfg.allow_host_freeze = true;
  Controller c(cfg);
  EXPECT_EQ(c.num_choices(s), 3u);
  EXPECT_EQ(c.step(s, 1, silent(), 2).next.state, CtrlState::kFreeze);
}

// ----------------------------------------------------------------- listen --

TEST(Listen, QuietSlotDecrementsTimeout) {
  Controller c(four_nodes());
  auto out = c.step(listen_state(5), 2, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kListen);
  EXPECT_EQ(out.next.listen_timeout, 4);
}

TEST(Listen, TimeoutZeroEntersColdStartWithOwnSlot) {
  Controller c(four_nodes());
  auto out = c.step(listen_state(0), 3, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kColdStart);
  EXPECT_EQ(out.next.slot, 3);  // slot' = node_id on entry
  EXPECT_EQ(out.next.agreed, 0);
  EXPECT_EQ(out.next.failed, 0);
  EXPECT_EQ(out.event, StepEvent::kListenTimeout);
}

TEST(Listen, FirstColdStartArmsBigBangAndDoesNotIntegrate) {
  Controller c(four_nodes());
  auto out = c.step(listen_state(3), 2, on_both(FrameKind::kColdStart, 1), 0);
  EXPECT_EQ(out.next.state, CtrlState::kListen);
  EXPECT_TRUE(out.next.big_bang);
  EXPECT_EQ(out.event, StepEvent::kBigBangArmed);
}

TEST(Listen, ColdStartRefreshesTimeoutEvenAtZero) {
  // "the node stays in the listen state even if the timeout counter just
  // reached zero."
  Controller c(four_nodes());
  auto out = c.step(listen_state(0), 2, on_both(FrameKind::kColdStart, 1), 0);
  EXPECT_EQ(out.next.state, CtrlState::kListen);
  EXPECT_EQ(out.next.listen_timeout, 4 + 2);
}

TEST(Listen, SecondColdStartIntegrates) {
  Controller c(four_nodes());
  auto out = c.step(listen_state(3, /*big_bang=*/true),
                    2, on_both(FrameKind::kColdStart, 1), 0);
  EXPECT_EQ(out.next.state, CtrlState::kPassive);
  EXPECT_EQ(out.next.slot, 2);  // id_on_bus + 1
  EXPECT_EQ(out.event, StepEvent::kIntegratedOnColdStart);
}

TEST(Listen, ColdStartIdWrapsAroundRound) {
  Controller c(four_nodes());
  auto out = c.step(listen_state(3, true), 2,
                    on_both(FrameKind::kColdStart, 4), 0);
  EXPECT_EQ(out.next.slot, 1);  // id == slots wraps to 1
}

TEST(Listen, CStateFrameIntegratesImmediately) {
  // "frames with explicit C state are used for immediate integration" —
  // no big bang needed.
  Controller c(four_nodes());
  auto out = c.step(listen_state(5, false), 4,
                    on_both(FrameKind::kCState, 2), 0);
  EXPECT_EQ(out.next.state, CtrlState::kPassive);
  EXPECT_EQ(out.next.slot, 3);
  EXPECT_EQ(out.event, StepEvent::kIntegratedOnCState);
}

TEST(Listen, CStatePreferredOverColdStartForIntegration) {
  Controller c(four_nodes());
  ChannelView view{ChannelFrame{FrameKind::kColdStart, 1},
                   ChannelFrame{FrameKind::kCState, 3}};
  auto out = c.step(listen_state(5, true), 2, view, 0);
  EXPECT_EQ(out.event, StepEvent::kIntegratedOnCState);
  EXPECT_EQ(out.next.slot, 4);  // from the C-state frame's id
}

TEST(Listen, IntegrationWorksFromEitherChannel) {
  Controller c(four_nodes());
  auto out0 = c.step(listen_state(5), 2, on_ch0(FrameKind::kCState, 1), 0);
  auto out1 = c.step(listen_state(5), 2, on_ch1(FrameKind::kCState, 1), 0);
  EXPECT_EQ(out0.next.state, CtrlState::kPassive);
  EXPECT_EQ(out1.next.state, CtrlState::kPassive);
  EXPECT_EQ(out0.next.slot, out1.next.slot);
}

TEST(Listen, OtherFrameRefreshesTimeout) {
  Controller c(four_nodes());
  auto out = c.step(listen_state(1), 3, on_ch0(FrameKind::kOther, 2), 0);
  EXPECT_EQ(out.next.state, CtrlState::kListen);
  EXPECT_EQ(out.next.listen_timeout, 4 + 3);
}

TEST(Listen, NoiseDoesNotRefreshTimeout) {
  Controller c(four_nodes());
  auto out = c.step(listen_state(2), 3, on_ch0(FrameKind::kBad, 0), 0);
  EXPECT_EQ(out.next.listen_timeout, 1);
}

TEST(Listen, BigBangDisabledIntegratesOnFirstColdStart) {
  ProtocolConfig cfg = four_nodes();
  cfg.big_bang_enabled = false;  // ablation
  Controller c(cfg);
  auto out = c.step(listen_state(3, false), 2,
                    on_both(FrameKind::kColdStart, 1), 0);
  EXPECT_EQ(out.next.state, CtrlState::kPassive);
}

// ------------------------------------------------------------- cold start --

NodeState cold_start_state(SlotNumber slot, std::uint8_t agreed,
                           std::uint8_t failed) {
  NodeState s;
  s.state = CtrlState::kColdStart;
  s.slot = slot;
  s.agreed = agreed;
  s.failed = failed;
  return s;
}

TEST(ColdStart, SendsColdStartFrameInOwnSlot) {
  Controller c(four_nodes());
  EXPECT_EQ(c.frame_to_send(cold_start_state(2, 0, 0), 2),
            (ChannelFrame{FrameKind::kColdStart, 2}));
  EXPECT_EQ(c.frame_to_send(cold_start_state(3, 0, 0), 2).kind,
            FrameKind::kNone);
}

TEST(ColdStart, MaintainsSlotCounter) {
  Controller c(four_nodes());
  auto out = c.step(cold_start_state(2, 1, 0), 1, silent(), 0);
  EXPECT_EQ(out.next.slot, 3);
  EXPECT_EQ(out.next.state, CtrlState::kColdStart);
}

TEST(ColdStart, AloneOnBusRetriesColdStart) {
  // agreed' <= 1 && failed' == 0 -> stay in cold start (round boundary for
  // node 1 is the slot-4 step).
  Controller c(four_nodes());
  auto out = c.step(cold_start_state(4, 1, 0), 1, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kColdStart);
  EXPECT_EQ(out.event, StepEvent::kCliqueRetryColdStart);
  EXPECT_EQ(out.next.agreed, 0);  // counters reset at the boundary
  EXPECT_EQ(out.next.slot, 1);
}

TEST(ColdStart, MajorityAgreedEntersActive) {
  Controller c(four_nodes());
  // Boundary step observes one more agreed frame (id matches slot 4).
  auto out = c.step(cold_start_state(4, 2, 0), 1,
                    on_both(FrameKind::kCState, 4), 0);
  EXPECT_EQ(out.next.state, CtrlState::kActive);
  EXPECT_EQ(out.event, StepEvent::kCliqueToActive);
}

TEST(ColdStart, CliqueTestUsesPrimedCounters) {
  // The paper's constraint reads agreed_slots_counter' — this slot's
  // observation must count. agreed=1 + this slot's agreed frame = 2 > 0.
  Controller c(four_nodes());
  auto out = c.step(cold_start_state(4, 1, 0), 1,
                    on_both(FrameKind::kCState, 4), 0);
  EXPECT_EQ(out.next.state, CtrlState::kActive);
}

TEST(ColdStart, MinorityFallsBackToListen) {
  Controller c(four_nodes());
  auto out = c.step(cold_start_state(4, 1, 2), 1, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kListen);
  EXPECT_EQ(out.event, StepEvent::kCliqueBackToListen);
  EXPECT_EQ(out.next.listen_timeout, 4 + 1);
  EXPECT_FALSE(out.next.big_bang);
}

TEST(ColdStart, NoTestAwayFromRoundBoundary) {
  Controller c(four_nodes());
  auto out = c.step(cold_start_state(2, 1, 3), 1, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kColdStart);  // test only at boundary
  EXPECT_EQ(out.next.failed, 3);
}

// ---------------------------------------------------------- active/passive --

NodeState integrated(CtrlState st, SlotNumber slot, std::uint8_t agreed,
                     std::uint8_t failed) {
  NodeState s;
  s.state = st;
  s.slot = slot;
  s.agreed = agreed;
  s.failed = failed;
  return s;
}

TEST(Active, SendsCStateFrameInOwnSlot) {
  Controller c(four_nodes());
  EXPECT_EQ(c.frame_to_send(integrated(CtrlState::kActive, 3, 0, 0), 3),
            (ChannelFrame{FrameKind::kCState, 3}));
  EXPECT_EQ(c.frame_to_send(integrated(CtrlState::kActive, 2, 0, 0), 3).kind,
            FrameKind::kNone);
}

TEST(Passive, DoesNotSend) {
  Controller c(four_nodes());
  EXPECT_EQ(c.frame_to_send(integrated(CtrlState::kPassive, 3, 0, 0), 3).kind,
            FrameKind::kNone);
}

TEST(Active, MaintainsSlotCounterAndCounts) {
  Controller c(four_nodes());
  auto out = c.step(integrated(CtrlState::kActive, 1, 0, 0), 3,
                    on_both(FrameKind::kCState, 1), 0);
  EXPECT_EQ(out.next.slot, 2);
  EXPECT_EQ(out.next.agreed, 1);
}

TEST(Active, RoundBoundaryMajorityStaysActive) {
  Controller c(four_nodes());
  auto out = c.step(integrated(CtrlState::kActive, 2, 2, 1), 3, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kActive);
  EXPECT_EQ(out.next.agreed, 0);  // counters reset
  EXPECT_EQ(out.next.failed, 0);
}

TEST(Active, RoundBoundaryMinorityFreezes) {
  // The forced freeze at the heart of the paper's property.
  Controller c(four_nodes());
  auto out = c.step(integrated(CtrlState::kActive, 2, 1, 2), 3, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kFreeze);
  EXPECT_EQ(out.event, StepEvent::kCliqueFreeze);
}

TEST(Active, TieCountsAsCliqueError) {
  Controller c(four_nodes());
  auto out = c.step(integrated(CtrlState::kActive, 2, 1, 1), 3, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kFreeze);
}

TEST(Active, SilentRoundDoesNotFreeze) {
  Controller c(four_nodes());
  auto out = c.step(integrated(CtrlState::kActive, 2, 0, 0), 3, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kActive);
}

TEST(Passive, PromotesToActiveOnMajority) {
  Controller c(four_nodes());
  auto out = c.step(integrated(CtrlState::kPassive, 2, 2, 0), 3, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kActive);
  EXPECT_EQ(out.event, StepEvent::kCliqueToActive);
}

TEST(Passive, FreezesOnMinority) {
  Controller c(four_nodes());
  auto out = c.step(integrated(CtrlState::kPassive, 2, 0, 1), 3, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kFreeze);
  EXPECT_EQ(out.event, StepEvent::kCliqueFreeze);
}

TEST(Passive, WaitsThroughSilence) {
  Controller c(four_nodes());
  auto out = c.step(integrated(CtrlState::kPassive, 2, 0, 0), 3, silent(), 0);
  EXPECT_EQ(out.next.state, CtrlState::kPassive);
}

TEST(Active, HostTransitionsGatedByConfig) {
  ProtocolConfig cfg = four_nodes();
  NodeState s = integrated(CtrlState::kActive, 1, 0, 0);
  EXPECT_EQ(Controller(cfg).num_choices(s), 1u);
  cfg.allow_host_freeze = true;
  Controller c(cfg);
  EXPECT_EQ(c.num_choices(s), 3u);
  EXPECT_EQ(c.step(s, 2, silent(), 1).next.state, CtrlState::kPassive);
  EXPECT_EQ(c.step(s, 2, silent(), 1).event, StepEvent::kHostPassive);
  EXPECT_EQ(c.step(s, 2, silent(), 2).next.state, CtrlState::kFreeze);
  EXPECT_EQ(c.step(s, 2, silent(), 2).event, StepEvent::kHostFreeze);
}

TEST(Counters, SaturateInsteadOfWrapping) {
  Controller c(four_nodes());
  NodeState s = integrated(CtrlState::kActive, 1, 15, 0);
  auto out = c.step(s, 3, on_both(FrameKind::kCState, 1), 0);
  EXPECT_EQ(out.next.agreed, 15);  // capped, not wrapped to 0
}

TEST(AbsorbingStates, TestAwaitDownloadStay) {
  Controller c(four_nodes());
  for (CtrlState st :
       {CtrlState::kTest, CtrlState::kAwait, CtrlState::kDownload}) {
    NodeState s;
    s.state = st;
    auto out = c.step(s, 1, on_both(FrameKind::kCState, 1), 0);
    EXPECT_EQ(out.next.state, st);
  }
}

}  // namespace
}  // namespace tta::ttpc
