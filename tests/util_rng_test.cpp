#include "util/rng.h"

#include <gtest/gtest.h>

namespace tta::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ZeroSeedIsWellMixed) {
  Rng r(0);
  EXPECT_NE(r.next_u64(), 0u);
  EXPECT_NE(r.next_u64(), r.next_u64());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(9);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) seen[r.next_below(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NextInClosedRange) {
  Rng r(11);
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(r.next_in(5, 5), 5);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);  // coarse uniformity check
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 2000; ++i) hits += r.next_bool(0.25);
  EXPECT_NEAR(hits / 2000.0, 0.25, 0.04);
  Rng r2(18);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(r2.next_bool(0.0));
}

TEST(Rng, ReseedResetsStream) {
  Rng r(21);
  std::uint64_t first = r.next_u64();
  r.next_u64();
  r.reseed(21);
  EXPECT_EQ(r.next_u64(), first);
}

}  // namespace
}  // namespace tta::util
