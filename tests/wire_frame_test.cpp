#include "wire/frame.h"

#include <gtest/gtest.h>

namespace tta::wire {
namespace {

CStateImage cs(std::uint16_t t, std::uint16_t pos, std::uint16_t members) {
  return CStateImage{t, pos, members};
}

WireFrame n_frame(const CStateImage& state, std::size_t payload_bytes = 0) {
  WireFrame f;
  f.header = {WireFrameType::kN, 1};
  f.cstate = state;
  f.payload.assign(payload_bytes, 0x5A);
  return f;
}

TEST(FrameSizes, MatchPaperHeadlineNumbers) {
  EXPECT_EQ(kNFrameMinBits, 28u);   // minimal N-frame
  EXPECT_EQ(kIFrameBits, 76u);      // protocol I-frame
  EXPECT_EQ(kXFrameBits, 2076u);    // maximal X-frame
  // Cold-start: self-consistent layout (the paper's own field list does not
  // sum to its quoted 40-bit total; see wire/frame.h).
  EXPECT_EQ(kColdStartFrameBits, 4u + 16u + 9u + 24u);
}

TEST(FrameSizes, EncodedBitsAgreesWithEncoder) {
  CStateImage state = cs(10, 2, 0b0101);
  for (int payload : {0, 1, 16, 240}) {
    WireFrame f = n_frame(state, payload);
    EXPECT_EQ(encode_frame(f, 0).size(), encoded_bits(f));
  }
  WireFrame i;
  i.header.type = WireFrameType::kI;
  EXPECT_EQ(encode_frame(i, 0).size(), kIFrameBits);
  WireFrame x;
  x.header.type = WireFrameType::kX;
  x.payload.assign(240, 0);
  EXPECT_EQ(encode_frame(x, 0).size(), kXFrameBits);
  WireFrame cold;
  cold.header.type = WireFrameType::kColdStart;
  EXPECT_EQ(encode_frame(cold, 0).size(), kColdStartFrameBits);
}

TEST(IFrame, RoundTripsAllFields) {
  WireFrame f;
  f.header = {WireFrameType::kI, 2};
  f.cstate = cs(0xBEEF, 3, 0b1011);
  for (int ch : {0, 1}) {
    DecodeResult r = decode_frame(encode_frame(f, ch), ch, CStateImage{});
    ASSERT_EQ(r.status, DecodeStatus::kOk);
    EXPECT_EQ(r.frame.header.type, WireFrameType::kI);
    EXPECT_EQ(r.frame.header.mode_change_request, 2);
    EXPECT_EQ(r.frame.cstate, f.cstate);
  }
}

TEST(ColdStartFrame, RoundTripsGlobalTimeAndRoundSlot) {
  WireFrame f;
  f.header.type = WireFrameType::kColdStart;
  f.cstate.global_time = 1234;
  f.round_slot = 3;
  DecodeResult r = decode_frame(encode_frame(f, 0), 0, CStateImage{});
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.frame.cstate.global_time, 1234);
  EXPECT_EQ(r.frame.round_slot, 3);
}

TEST(XFrame, RoundTripsPayloadAndCState) {
  WireFrame f;
  f.header.type = WireFrameType::kX;
  f.cstate = cs(7, 1, 0b1111);
  f.payload.resize(240);
  for (std::size_t i = 0; i < f.payload.size(); ++i) {
    f.payload[i] = static_cast<std::uint8_t>(i * 37);
  }
  for (int ch : {0, 1}) {
    DecodeResult r = decode_frame(encode_frame(f, ch), ch, CStateImage{});
    ASSERT_EQ(r.status, DecodeStatus::kOk) << "channel " << ch;
    EXPECT_EQ(r.frame.cstate, f.cstate);
    EXPECT_EQ(r.frame.payload, f.payload);
  }
}

TEST(NFrame, ImplicitCStateAcceptsMatchingReceiver) {
  CStateImage shared = cs(42, 2, 0b0011);
  WireFrame f = n_frame(shared, 4);
  DecodeResult r = decode_frame(encode_frame(f, 0), 0, shared);
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.frame.payload, f.payload);
}

TEST(NFrame, ImplicitCStateRejectsDisagreeingReceiver) {
  // The mechanism at the heart of TTP/C: the receiver cannot distinguish a
  // C-state disagreement from corruption — both are a CRC mismatch.
  CStateImage sender_state = cs(42, 2, 0b0011);
  WireFrame f = n_frame(sender_state, 4);
  BitStream bits = encode_frame(f, 0);

  CStateImage wrong_time = cs(43, 2, 0b0011);
  EXPECT_EQ(decode_frame(bits, 0, wrong_time).status,
            DecodeStatus::kCrcMismatch);
  CStateImage wrong_slot = cs(42, 3, 0b0011);
  EXPECT_EQ(decode_frame(bits, 0, wrong_slot).status,
            DecodeStatus::kCrcMismatch);
  CStateImage wrong_members = cs(42, 2, 0b0111);
  EXPECT_EQ(decode_frame(bits, 0, wrong_members).status,
            DecodeStatus::kCrcMismatch);
}

TEST(Frame, CorruptionIsDetected) {
  WireFrame f;
  f.header.type = WireFrameType::kI;
  f.cstate = cs(5, 1, 0b0001);
  BitStream bits = encode_frame(f, 0);
  for (std::size_t i : {0ul, 10ul, 40ul, bits.size() - 1}) {
    BitStream corrupted = bits;
    corrupted.flip_bit(i);
    EXPECT_NE(decode_frame(corrupted, 0, CStateImage{}).status,
              DecodeStatus::kOk)
        << "flipped bit " << i;
  }
}

TEST(Frame, WrongChannelCrcScheduleRejects) {
  WireFrame f;
  f.header.type = WireFrameType::kI;
  BitStream bits = encode_frame(f, 0);
  EXPECT_EQ(decode_frame(bits, 1, CStateImage{}).status,
            DecodeStatus::kCrcMismatch);
}

TEST(XFrame, EitherChannelCanVerifyNatively) {
  // The X-frame carries two CRCs so both channels validate the same image.
  WireFrame f;
  f.header.type = WireFrameType::kX;
  f.payload.assign(240, 0xAB);
  BitStream bits = encode_frame(f, 0);
  EXPECT_EQ(decode_frame(bits, 0, CStateImage{}).status, DecodeStatus::kOk);
  EXPECT_EQ(decode_frame(bits, 1, CStateImage{}).status, DecodeStatus::kOk);
}

TEST(Frame, TruncatedInputReportsTruncation) {
  BitStream tiny;
  tiny.push_bits(0, 10);
  EXPECT_EQ(decode_frame(tiny, 0, CStateImage{}).status,
            DecodeStatus::kTruncated);
}

TEST(CStateImage, CrcSeedSeparatesSingleFieldChanges) {
  CStateImage base = cs(1, 1, 1);
  EXPECT_NE(base.crc_seed(), cs(2, 1, 1).crc_seed());
  EXPECT_NE(base.crc_seed(), cs(1, 2, 1).crc_seed());
  EXPECT_NE(base.crc_seed(), cs(1, 1, 2).crc_seed());
  EXPECT_LE(base.crc_seed(), 0xFFFFFFu);  // 24-bit fold
}

}  // namespace
}  // namespace tta::wire
