#include "core/report.h"

#include <gtest/gtest.h>

namespace tta::core {
namespace {

TEST(Figure3Csv, HasHeaderAndNumericRows) {
  std::string csv = figure3_csv();
  EXPECT_EQ(csv.rfind("f_min,f_max,max_clock_ratio\n", 0), 0u);
  // Every subsequent line has two commas.
  std::size_t lines = 0;
  std::size_t pos = csv.find('\n') + 1;
  while (pos < csv.size()) {
    std::size_t end = csv.find('\n', pos);
    std::string line = csv.substr(pos, end - pos);
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 2) << line;
    ++lines;
    pos = end + 1;
  }
  EXPECT_GT(lines, 30u);
}

TEST(Report, ContainsEverySection) {
  ReportOptions options;
  options.sim_steps = 300;
  options.include_recoverability = false;  // keep the test fast
  options.include_leaky_bucket = false;
  std::string report = generate_report(options);
  EXPECT_NE(report.find("## E1"), std::string::npos);
  EXPECT_NE(report.find("## E2"), std::string::npos);
  EXPECT_NE(report.find("## E3"), std::string::npos);
  EXPECT_NE(report.find("## E5"), std::string::npos);
  EXPECT_NE(report.find("## E6/E7"), std::string::npos);
  EXPECT_NE(report.find("## E9"), std::string::npos);
  EXPECT_NE(report.find("## E10"), std::string::npos);
  EXPECT_EQ(report.find("## E11"), std::string::npos);  // disabled
}

TEST(Report, ContainsTheHeadlineVerdictsAndNumbers) {
  ReportOptions options;
  options.sim_steps = 300;
  options.include_recoverability = false;
  options.include_leaky_bucket = false;
  std::string report = generate_report(options);
  EXPECT_NE(report.find("VIOLATED"), std::string::npos);
  EXPECT_NE(report.find("HOLDS"), std::string::npos);
  EXPECT_NE(report.find("115000"), std::string::npos);  // eq (6)
  EXPECT_NE(report.find("replays the buffered"), std::string::npos);
  EXPECT_NE(report.find("sos_value"), std::string::npos);
}

TEST(Report, SimulationSectionsAreDeterministic) {
  // Wall-clock columns vary run to run; the simulated sections (E9, E10)
  // and the analytic sections (E5, E6/E7) must not.
  ReportOptions options;
  options.sim_steps = 200;
  options.include_recoverability = false;
  options.include_leaky_bucket = false;
  std::string a = generate_report(options);
  std::string b = generate_report(options);
  auto section = [](const std::string& s, const char* from) {
    std::size_t begin = s.find(from);
    EXPECT_NE(begin, std::string::npos) << from;
    return s.substr(begin);
  };
  EXPECT_EQ(section(a, "## E5"), section(b, "## E5"));
}

}  // namespace
}  // namespace tta::core
