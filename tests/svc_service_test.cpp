// VerificationService end-to-end: the E1 verdict matrix through the batch
// pipeline, cache behavior across passes, serial/parallel engine
// agreement for the same batch, deadline degradation, and admission
// bounds. Labeled `parallel`: jobs run concurrently on the service's
// worker pool, so this doubles as a TSan workload.
#include <gtest/gtest.h>

#include "core/experiments.h"
#include "svc/service.h"

namespace tta::svc {
namespace {

std::vector<JobSpec> e1_jobs() { return core::feature_matrix_jobs(); }

TEST(VerificationService, E1GridReproducesTheSection52Matrix) {
  VerificationService service;
  const std::vector<JobSpec> jobs = e1_jobs();
  const std::vector<JobResult> results = service.run_batch(jobs);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const bool buffering =
        jobs[i].model.authority == guardian::Authority::kFullShifting;
    EXPECT_EQ(results[i].verdict,
              buffering ? mc::Verdict::kViolated : mc::Verdict::kHolds)
        << guardian::to_string(jobs[i].model.authority);
    EXPECT_FALSE(results[i].outcome.rejected);
    EXPECT_FALSE(results[i].from_cache);
    EXPECT_EQ(results[i].digest, jobs[i].digest());
    if (buffering) {
      EXPECT_FALSE(results[i].trace.empty());
    } else {
      // E1 pinned numbers: the three non-buffering authorities share one
      // reachable state space.
      EXPECT_EQ(results[i].stats.states_explored, 110'956u);
      EXPECT_EQ(results[i].stats.transitions, 875'440u);
    }
  }
}

TEST(VerificationService, SecondPassIsServedFromTheCache) {
  VerificationService service;
  const std::vector<JobSpec> jobs = e1_jobs();
  const std::vector<JobResult> first = service.run_batch(jobs);
  const std::vector<JobResult> second = service.run_batch(jobs);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].from_cache) << i;
    EXPECT_EQ(second[i].verdict, first[i].verdict) << i;
    EXPECT_EQ(second[i].stats.states_explored,
              first[i].stats.states_explored)
        << i;
    EXPECT_EQ(second[i].trace.size(), first[i].trace.size()) << i;
  }
  EXPECT_GT(service.metrics().cache_hit_rate(), 0.0);
  EXPECT_EQ(service.metrics().cache_hits.load(), 4u);
  EXPECT_EQ(service.metrics().jobs_completed.load(), 8u);
}

TEST(VerificationService, SerialAndParallelEnginesAgreeOnTheSameBatch) {
  // Same JobSpec batch forced through each engine, caching disabled so
  // both actually run. The engines are documented bit-identical: verdicts
  // and exploration statistics must match exactly.
  ServiceConfig cfg;
  cfg.cache_capacity = 0;
  VerificationService service(cfg);

  std::vector<JobSpec> serial_jobs = e1_jobs();
  std::vector<JobSpec> parallel_jobs = e1_jobs();
  for (auto& j : serial_jobs) j.engine = EngineChoice::kSerial;
  for (auto& j : parallel_jobs) {
    j.engine = EngineChoice::kParallel;
    j.threads = 4;
  }
  const std::vector<JobResult> serial = service.run_batch(serial_jobs);
  const std::vector<JobResult> parallel = service.run_batch(parallel_jobs);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].engine_used, EngineChoice::kSerial);
    EXPECT_EQ(parallel[i].engine_used, EngineChoice::kParallel);
    EXPECT_EQ(serial[i].verdict, parallel[i].verdict) << i;
    EXPECT_EQ(serial[i].stats.states_explored,
              parallel[i].stats.states_explored)
        << i;
    EXPECT_EQ(serial[i].stats.transitions, parallel[i].stats.transitions)
        << i;
    EXPECT_EQ(serial[i].stats.max_depth, parallel[i].stats.max_depth) << i;
    EXPECT_EQ(serial[i].trace.size(), parallel[i].trace.size()) << i;
    // And both engines hash to the same cache key by construction.
    EXPECT_EQ(serial_jobs[i].digest(), parallel_jobs[i].digest()) << i;
  }
}

TEST(VerificationService, DeadlineDegradesToExplicitInconclusive) {
  VerificationService service;
  JobSpec spec;
  spec.model.authority = guardian::Authority::kPassive;
  spec.property = Property::kNoIntegratedNodeFreezes;
  spec.deadline_ms = 1;  // ~110k-state space: fires mid-search

  const JobResult result = service.run(spec);
  EXPECT_EQ(result.verdict, mc::Verdict::kInconclusive);
  EXPECT_TRUE(result.stats.cancelled);
  EXPECT_FALSE(result.stats.exhausted);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_EQ(service.metrics().jobs_cancelled.load(), 1u);

  // Inconclusive results must not be cached: a retry without the deadline
  // really runs and really concludes.
  JobSpec retry = spec;
  retry.deadline_ms = 0;
  const JobResult concluded = service.run(retry);
  EXPECT_FALSE(concluded.from_cache);
  EXPECT_EQ(concluded.verdict, mc::Verdict::kHolds);
}

TEST(VerificationService, AdmissionBoundRejectsExplicitly) {
  ServiceConfig cfg;
  cfg.max_pending = 2;
  VerificationService service(cfg);
  std::vector<JobSpec> jobs(5);
  for (auto& j : jobs) {
    j.model.authority = guardian::Authority::kPassive;
    // Tiny budget keeps the accepted jobs fast; rejection happens before
    // execution anyway.
    j.max_states = 1'000;
  }
  const std::vector<JobResult> results = service.run_batch(jobs);
  std::size_t rejected = 0;
  for (const JobResult& r : results) {
    if (r.outcome.rejected) {
      ++rejected;
      EXPECT_EQ(r.verdict, mc::Verdict::kInconclusive);
      EXPECT_EQ(r.stats.states_explored, 0u);
    }
  }
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(service.metrics().jobs_rejected.load(), 3u);
  EXPECT_EQ(service.metrics().jobs_admitted.load(), 2u);
}

TEST(JobQueue, PopsCheapestFirst) {
  JobQueue queue(16);
  JobSpec cheap;
  cheap.model.authority = guardian::Authority::kPassive;
  cheap.model.allow_silence_fault = false;
  cheap.model.allow_bad_frame_fault = false;
  JobSpec medium;
  medium.model.authority = guardian::Authority::kPassive;
  JobSpec expensive;
  expensive.model.authority = guardian::Authority::kPassive;
  expensive.model.protocol.num_nodes = 5;
  expensive.model.protocol.num_slots = 5;

  ASSERT_TRUE(queue.admit(expensive, 0, 1).admitted);
  ASSERT_TRUE(queue.admit(cheap, 0, 2).admitted);
  ASSERT_TRUE(queue.admit(medium, 0, 3).admitted);
  EXPECT_EQ(queue.pending(), 3u);

  EXPECT_EQ(queue.pop_next()->sequence, 2u);
  EXPECT_EQ(queue.pop_next()->sequence, 3u);
  EXPECT_EQ(queue.pop_next()->sequence, 1u);
  EXPECT_FALSE(queue.pop_next().has_value());
}

TEST(JobQueue, TieBreaksOnAdmissionOrder) {
  JobQueue queue(4);
  JobSpec spec;  // identical cost
  ASSERT_TRUE(queue.admit(spec, 0, 7).admitted);
  ASSERT_TRUE(queue.admit(spec, 0, 3).admitted);
  ASSERT_TRUE(queue.admit(spec, 0, 5).admitted);
  EXPECT_EQ(queue.pop_next()->sequence, 7u);
  EXPECT_EQ(queue.pop_next()->sequence, 3u);
  EXPECT_EQ(queue.pop_next()->sequence, 5u);
}

TEST(JobQueue, PriorityBandsDominateCost) {
  // Two-key order: priority desc, then cheapest-first within a band.
  JobQueue queue(16);
  JobSpec cheap;
  cheap.model.authority = guardian::Authority::kPassive;
  cheap.model.allow_silence_fault = false;
  cheap.model.allow_bad_frame_fault = false;
  JobSpec expensive;
  expensive.model.authority = guardian::Authority::kPassive;
  expensive.model.protocol.num_nodes = 5;
  expensive.model.protocol.num_slots = 5;

  ASSERT_TRUE(queue.admit(cheap, 0, 1, /*priority=*/0).admitted);
  ASSERT_TRUE(queue.admit(expensive, 0, 2, /*priority=*/10).admitted);
  ASSERT_TRUE(queue.admit(cheap, 0, 3, /*priority=*/10).admitted);
  ASSERT_TRUE(queue.admit(expensive, 0, 4, /*priority=*/-5).admitted);

  EXPECT_EQ(queue.pop_next()->sequence, 3u);  // high band, cheaper
  EXPECT_EQ(queue.pop_next()->sequence, 2u);  // high band, dearer
  EXPECT_EQ(queue.pop_next()->sequence, 1u);  // default band
  EXPECT_EQ(queue.pop_next()->sequence, 4u);  // negative band last
}

TEST(JobQueue, RefusesBeyondMaxPending) {
  JobQueue queue(1);
  JobSpec spec;
  EXPECT_TRUE(queue.admit(spec, 0, 1).admitted);
  EXPECT_FALSE(queue.admit(spec, 0, 2).admitted);
  queue.pop_next();
  EXPECT_TRUE(queue.admit(spec, 0, 3).admitted);
}

TEST(JobQueue, RejectionTicketStillCarriesTheDigest) {
  // The satellite bugfix: canonicalization happens before the bound check,
  // so a rejected admission still identifies the job it refused.
  JobQueue queue(1);
  JobSpec spec;
  spec.model.authority = guardian::Authority::kPassive;
  ASSERT_TRUE(queue.admit(spec, 0, 1).admitted);
  const JobQueue::Ticket rejected = queue.admit(spec, 0, 2);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.digest, spec.digest());
  EXPECT_EQ(rejected.cost, spec.estimated_cost());
}

}  // namespace
}  // namespace tta::svc
