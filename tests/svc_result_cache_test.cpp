// ResultCache: hit/miss accounting, LRU eviction order, refresh semantics,
// and the capacity-zero escape hatch.
#include <gtest/gtest.h>

#include "svc/result_cache.h"

namespace tta::svc {
namespace {

JobResult result_with(std::uint64_t digest, mc::Verdict verdict) {
  JobResult r;
  r.digest = digest;
  r.verdict = verdict;
  r.stats.states_explored = digest * 10;
  return r;
}

TEST(ResultCache, MissThenHit) {
  ResultCache cache(4);
  JobResult out;
  EXPECT_FALSE(cache.lookup(1, &out));
  cache.insert(1, result_with(1, mc::Verdict::kHolds));
  ASSERT_TRUE(cache.lookup(1, &out));
  EXPECT_EQ(out.verdict, mc::Verdict::kHolds);
  EXPECT_EQ(out.stats.states_explored, 10u);

  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.insert(1, result_with(1, mc::Verdict::kHolds));
  cache.insert(2, result_with(2, mc::Verdict::kViolated));

  // Touch 1 so 2 becomes the LRU entry, then overflow.
  JobResult out;
  ASSERT_TRUE(cache.lookup(1, &out));
  cache.insert(3, result_with(3, mc::Verdict::kHolds));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(1, &out));
  EXPECT_FALSE(cache.lookup(2, &out));  // evicted
  EXPECT_TRUE(cache.lookup(3, &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, InsertRefreshesExistingKeyWithoutEviction) {
  ResultCache cache(2);
  cache.insert(1, result_with(1, mc::Verdict::kHolds));
  cache.insert(2, result_with(2, mc::Verdict::kHolds));
  cache.insert(1, result_with(1, mc::Verdict::kViolated));  // refresh

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().insertions, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  JobResult out;
  ASSERT_TRUE(cache.lookup(1, &out));
  EXPECT_EQ(out.verdict, mc::Verdict::kViolated);

  // The refresh also promoted key 1: key 2 is now the eviction victim.
  cache.insert(3, result_with(3, mc::Verdict::kHolds));
  EXPECT_FALSE(cache.lookup(2, &out));
  EXPECT_TRUE(cache.lookup(1, &out));
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.insert(1, result_with(1, mc::Verdict::kHolds));
  JobResult out;
  EXPECT_FALSE(cache.lookup(1, &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, ClearEmptiesButKeepsCounters) {
  ResultCache cache(4);
  cache.insert(1, result_with(1, mc::Verdict::kHolds));
  JobResult out;
  ASSERT_TRUE(cache.lookup(1, &out));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(1, &out));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCache, TracesSurviveTheRoundTrip) {
  ResultCache cache(4);
  JobResult in = result_with(9, mc::Verdict::kViolated);
  in.trace.resize(11);
  cache.insert(9, in);
  JobResult out;
  ASSERT_TRUE(cache.lookup(9, &out));
  EXPECT_EQ(out.trace.size(), 11u);
}

}  // namespace
}  // namespace tta::svc
