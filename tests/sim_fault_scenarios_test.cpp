// Integration tests of the fault-propagation claims (experiment E9): each
// test pins one cell of the bus-vs-star matrix that the paper's background
// section ([7]) reports.
#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace tta::sim {
namespace {

ClusterConfig make(Topology topo, guardian::Authority a) {
  ClusterConfig cfg;
  cfg.topology = topo;
  cfg.guardian.authority = a;
  cfg.keep_log = false;
  return cfg;
}

FaultInjector one_node_fault(ttpc::NodeId node, NodeFaultMode mode,
                             std::uint64_t from = 0) {
  FaultInjector fi;
  fi.add(NodeFaultWindow{node, mode, from, UINT64_MAX});
  return fi;
}

// ------------------------------------------------------------- babbling --

TEST(Babbling, FromPowerOnKillsBusStartup) {
  Cluster c(make(Topology::kBus, guardian::Authority::kPassive),
            one_node_fault(1, NodeFaultMode::kBabbling));
  c.run(600);
  // Local guardians have no time base before startup, so the babbler owns
  // the bus forever: the cluster never forms.
  EXPECT_FALSE(c.all_healthy_in_state(ttpc::CtrlState::kActive));
}

TEST(Babbling, CentralGuardianActivitySupervisionSavesStartup) {
  for (guardian::Authority a : {guardian::Authority::kTimeWindows,
                                guardian::Authority::kSmallShifting}) {
    Cluster c(make(Topology::kStar, a),
              one_node_fault(1, NodeFaultMode::kBabbling));
    c.run(600);
    EXPECT_TRUE(c.all_healthy_in_state(ttpc::CtrlState::kActive))
        << guardian::to_string(a);
    EXPECT_EQ(c.healthy_clique_frozen(), 0u);
  }
}

TEST(Babbling, PassiveStarForwardsTheBabbleLikeABus) {
  Cluster c(make(Topology::kStar, guardian::Authority::kPassive),
            one_node_fault(1, NodeFaultMode::kBabbling));
  c.run(600);
  EXPECT_FALSE(c.all_healthy_in_state(ttpc::CtrlState::kActive));
}

TEST(Babbling, SteadyStateBabblerIsContainedByLocalGuardiansOnBus) {
  // Once the cluster (and thus the local guardians) have a time base, the
  // classic bus guardian does its job.
  Cluster c(make(Topology::kBus, guardian::Authority::kPassive),
            one_node_fault(1, NodeFaultMode::kBabbling, /*from=*/100));
  c.run(600);
  EXPECT_EQ(c.healthy_clique_frozen(), 0u);
  for (ttpc::NodeId id = 2; id <= 4; ++id) {
    EXPECT_EQ(c.node(id).state().state, ttpc::CtrlState::kActive);
  }
}

// ----------------------------------------------------------- masquerade --

TEST(Masquerade, CapturesIntegrationOnBus) {
  Cluster c(make(Topology::kBus, guardian::Authority::kPassive),
            one_node_fault(1, NodeFaultMode::kMasqueradeColdStart));
  c.run(600);
  // Some healthy node adopted a cold-start frame whose claimed slot did not
  // match the physical sender — the definition of successful masquerading.
  EXPECT_GT(c.metrics().masquerade_integrations, 0u);
}

TEST(Masquerade, SemanticCentralGuardianBlocksIt) {
  Cluster c(make(Topology::kStar, guardian::Authority::kSmallShifting),
            one_node_fault(1, NodeFaultMode::kMasqueradeColdStart));
  c.run(600);
  EXPECT_EQ(c.metrics().masquerade_integrations, 0u);
  EXPECT_GT(c.metrics().guardian_blocks_masquerade, 0u);
  // The healthy remainder of the cluster starts normally.
  EXPECT_TRUE(c.all_healthy_in_state(ttpc::CtrlState::kActive));
}

TEST(Masquerade, TimeWindowsAloneCannotStopStartupMasquerade) {
  // Windows need a time base; before synchronization the masquerader's
  // frames pass — this is exactly why [2] added semantic analysis.
  Cluster c(make(Topology::kStar, guardian::Authority::kTimeWindows),
            one_node_fault(1, NodeFaultMode::kMasqueradeColdStart));
  c.run(600);
  EXPECT_GT(c.metrics().masquerade_integrations, 0u);
}

// ----------------------------------------------------------- bad C-state --

TEST(BadCState, SteadyStateClusterTolerates) {
  // Integrated nodes recognize the bad frames as incorrect and just expel
  // the sender; no healthy node is hurt.
  Cluster c(make(Topology::kBus, guardian::Authority::kPassive),
            one_node_fault(1, NodeFaultMode::kBadCState));
  c.run(600);
  EXPECT_EQ(c.healthy_clique_frozen(), 0u);
}

TEST(BadCState, LateJoinerPoisonedOnBus) {
  // A node integrating into the running cluster adopts the first C-state it
  // sees; at join offset 121 that is the faulty node's frame.
  ClusterConfig cfg = make(Topology::kBus, guardian::Authority::kPassive);
  cfg.power_on_steps = {0, 1, 2, 121};
  Cluster c(cfg, one_node_fault(1, NodeFaultMode::kBadCState));
  c.run(400);
  EXPECT_TRUE(c.node(4).ever_clique_frozen());
}

TEST(BadCState, SemanticGuardianProtectsEveryJoinOffset) {
  for (std::uint64_t off = 120; off < 128; ++off) {
    ClusterConfig cfg =
        make(Topology::kStar, guardian::Authority::kSmallShifting);
    cfg.power_on_steps = {0, 1, 2, off};
    Cluster c(cfg, one_node_fault(1, NodeFaultMode::kBadCState));
    c.run(400);
    EXPECT_FALSE(c.node(4).ever_clique_frozen()) << "offset " << off;
    EXPECT_EQ(c.node(4).state().state, ttpc::CtrlState::kActive)
        << "offset " << off;
  }
}

// ------------------------------------------------------------------ SOS --

TEST(Sos, ValueDomainFreezesHealthyNodesOnBus) {
  Cluster c(make(Topology::kBus, guardian::Authority::kPassive),
            one_node_fault(1, NodeFaultMode::kSosValue));
  c.run(600);
  EXPECT_GT(c.healthy_clique_frozen(), 0u);
  EXPECT_GT(c.metrics().sos_disagreements, 0u);
}

TEST(Sos, TimeDomainFreezesHealthyNodesOnBus) {
  Cluster c(make(Topology::kBus, guardian::Authority::kPassive),
            one_node_fault(1, NodeFaultMode::kSosTime));
  c.run(600);
  EXPECT_GT(c.healthy_clique_frozen(), 0u);
}

TEST(Sos, TimeWindowsDoNotHelpAgainstSos) {
  Cluster c(make(Topology::kStar, guardian::Authority::kTimeWindows),
            one_node_fault(1, NodeFaultMode::kSosValue));
  c.run(600);
  EXPECT_GT(c.healthy_clique_frozen(), 0u);
}

TEST(Sos, SignalReshapingEliminatesSos) {
  for (NodeFaultMode mode :
       {NodeFaultMode::kSosValue, NodeFaultMode::kSosTime}) {
    Cluster c(make(Topology::kStar, guardian::Authority::kSmallShifting),
              one_node_fault(1, mode));
    c.run(600);
    EXPECT_EQ(c.healthy_clique_frozen(), 0u) << to_string(mode);
    EXPECT_EQ(c.metrics().sos_disagreements, 0u) << to_string(mode);
    EXPECT_TRUE(c.all_healthy_in_state(ttpc::CtrlState::kActive));
  }
}

// -------------------------------------------------------- silent node ----

TEST(SilentNode, ClusterRunsWithoutIt) {
  Cluster c(make(Topology::kStar, guardian::Authority::kSmallShifting),
            one_node_fault(2, NodeFaultMode::kSilent));
  c.run(600);
  EXPECT_TRUE(c.all_healthy_in_state(ttpc::CtrlState::kActive));
  // The silent node never appears in the healthy nodes' membership.
  EXPECT_FALSE((c.node(1).membership() >> 1) & 1u);
}

// -------------------------------------------- local guardian faults ------

TEST(LocalGuardianFault, StuckClosedSilencesOnlyItsNode) {
  ClusterConfig cfg = make(Topology::kBus, guardian::Authority::kPassive);
  FaultInjector fi;
  fi.add(LocalGuardianFaultWindow{2, guardian::LocalGuardianFault::kStuckClosed,
                                  0, UINT64_MAX});
  Cluster c(cfg, std::move(fi));
  c.run(600);
  // Node 2's frames never reach the bus; everyone else runs fine.
  EXPECT_EQ(c.healthy_clique_frozen(), 0u);
  for (ttpc::NodeId id : {ttpc::NodeId{1}, ttpc::NodeId{3}, ttpc::NodeId{4}}) {
    EXPECT_EQ(c.node(id).state().state, ttpc::CtrlState::kActive);
    EXPECT_FALSE((c.node(id).membership() >> 1) & 1u);
  }
}

TEST(LocalGuardianFault, StuckOpenAlonePreservesService) {
  // Losing protection is harmless until the node itself also fails — the
  // classic dual-fault argument for guardian independence.
  ClusterConfig cfg = make(Topology::kBus, guardian::Authority::kPassive);
  FaultInjector fi;
  fi.add(LocalGuardianFaultWindow{2, guardian::LocalGuardianFault::kStuckOpen,
                                  0, UINT64_MAX});
  Cluster c(cfg, std::move(fi));
  c.run(600);
  EXPECT_EQ(c.healthy_clique_frozen(), 0u);
  EXPECT_EQ(c.count_in_state(ttpc::CtrlState::kActive), 4u);
}

// ----------------------------------------- coupler faults in simulation --

TEST(CouplerFault, TransientSilenceIsMaskedByRedundantChannel) {
  ClusterConfig cfg = make(Topology::kStar, guardian::Authority::kSmallShifting);
  FaultInjector fi;
  fi.add(CouplerFaultWindow{0, guardian::CouplerFault::kSilence, 50, 200});
  Cluster c(cfg, std::move(fi));
  c.run(600);
  EXPECT_EQ(c.healthy_clique_frozen(), 0u);
  EXPECT_EQ(c.count_in_state(ttpc::CtrlState::kActive), 4u);
}

TEST(CouplerFault, TransientNoiseIsMaskedByRedundantChannel) {
  ClusterConfig cfg = make(Topology::kStar, guardian::Authority::kPassive);
  FaultInjector fi;
  fi.add(CouplerFaultWindow{1, guardian::CouplerFault::kBadFrame, 50, 200});
  Cluster c(cfg, std::move(fi));
  c.run(600);
  EXPECT_EQ(c.healthy_clique_frozen(), 0u);
}

TEST(CouplerFault, ReplayOnBufferingCouplerCanFreezeIntegratedNode) {
  // The headline result, reproduced in simulation: a single out-of-slot
  // replay by a full-shifting coupler during the integration phase forces a
  // healthy node out of the cluster.
  ClusterConfig cfg =
      make(Topology::kStar, guardian::Authority::kFullShifting);
  FaultInjector fi;
  // Replay into the integration phase (nodes integrate on the cold start
  // around step 12; the replayed frame at 13 carries a stale slot id).
  fi.add(CouplerFaultWindow{0, guardian::CouplerFault::kOutOfSlot, 13, 13});
  Cluster c(cfg, std::move(fi));
  c.run(200);
  EXPECT_GT(c.healthy_clique_frozen(), 0u);
}

TEST(CouplerFault, ReplayImpossibleWithoutBufferingAuthority) {
  // The same schedule against a small-shifting coupler is inert: the fault
  // physically cannot occur (the coupler holds no frames).
  ClusterConfig cfg =
      make(Topology::kStar, guardian::Authority::kSmallShifting);
  FaultInjector fi;
  fi.add(CouplerFaultWindow{0, guardian::CouplerFault::kOutOfSlot, 13, 13});
  Cluster c(cfg, std::move(fi));
  c.run(200);
  EXPECT_EQ(c.healthy_clique_frozen(), 0u);
  EXPECT_EQ(c.metrics().replay_integrations, 0u);
  EXPECT_TRUE(c.all_healthy_in_state(ttpc::CtrlState::kActive));
}

}  // namespace
}  // namespace tta::sim
