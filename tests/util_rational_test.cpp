#include "util/rational.h"

#include <gtest/gtest.h>

namespace tta::util {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 4), Rational(-1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(0, 7).num(), 0);
  EXPECT_EQ(Rational(0, 7).den(), 1);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 3), Rational(1, 2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(Rational, ComparisonIsExact) {
  EXPECT_LT(Rational(1, 3), Rational(34, 100));
  EXPECT_GT(Rational(1, 3), Rational(33, 100));
  EXPECT_LE(Rational(1, 2), Rational(2, 4));
  EXPECT_EQ(Rational(1000000, 3000000), Rational(1, 3));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
  EXPECT_EQ(Rational(0).floor(), 0);
}

TEST(Rational, PpmConstructor) {
  EXPECT_EQ(Rational::ppm(100), Rational(1, 10000));
  EXPECT_DOUBLE_EQ(Rational::ppm(100).to_double(), 1e-4);
  EXPECT_EQ(Rational::ppm(0), Rational(0));
}

TEST(Rational, LargeIntermediateProductsReduce) {
  // Each operand is near 2^31; the raw cross product would pass 2^62 but
  // reduces back into range.
  Rational a(1'000'000'007, 2);
  Rational b(2, 1'000'000'007);
  EXPECT_EQ(a * b, Rational(1));
  Rational c(999'999'999, 1'000'000'000);
  Rational d = c * c;
  EXPECT_LT(d, Rational(1));
  EXPECT_GT(d, Rational(99, 100));
}

TEST(Rational, ClockRateUseCase) {
  // 100 ppm fast vs 100 ppm slow — the paper's eq. (5) scenario, exactly.
  Rational fast(1'000'100, 1'000'000);
  Rational slow(999'900, 1'000'000);
  Rational rho = (fast - slow) / fast;
  EXPECT_EQ(rho, Rational(200, 1'000'100));
  EXPECT_NEAR(rho.to_double(), 0.0002, 1e-7);
}

TEST(Rational, ToStringFormat) {
  EXPECT_EQ(Rational(1, 3).to_string(), "1/3");
  EXPECT_EQ(Rational(-5).to_string(), "-5/1");
}

}  // namespace
}  // namespace tta::util
