#include "util/bitpack.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.h"

namespace tta::util {
namespace {

TEST(BitsFor, SmallValues) {
  EXPECT_EQ(bits_for(0), 1u);
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 2u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 3u);
  EXPECT_EQ(bits_for(255), 8u);
  EXPECT_EQ(bits_for(256), 9u);
}

TEST(BitsFor, WideValues) {
  EXPECT_EQ(bits_for((1ull << 32) - 1), 32u);
  EXPECT_EQ(bits_for(1ull << 32), 33u);
  EXPECT_EQ(bits_for(~0ull), 64u);
}

TEST(BitWriter, SingleFieldRoundTrip) {
  PackedState p;
  BitWriter w(p);
  w.write(0x2A, 6);
  BitReader r(p);
  EXPECT_EQ(r.read(6), 0x2Au);
}

TEST(BitWriter, SequentialFieldsPreserveOrder) {
  PackedState p;
  BitWriter w(p);
  w.write(5, 3);
  w.write_bool(true);
  w.write(1000, 10);
  w.write(0, 1);
  w.write(77, 7);
  BitReader r(p);
  EXPECT_EQ(r.read(3), 5u);
  EXPECT_TRUE(r.read_bool());
  EXPECT_EQ(r.read(10), 1000u);
  EXPECT_EQ(r.read(1), 0u);
  EXPECT_EQ(r.read(7), 77u);
  EXPECT_EQ(r.bits_read(), w.bits_written());
}

TEST(BitWriter, CrossesWordBoundary) {
  PackedState p;
  BitWriter w(p);
  w.write(0, 60);
  w.write(0xDEADBEEFCAFEull, 48);  // straddles words[0]/words[1]
  w.write(0x123, 12);
  BitReader r(p);
  EXPECT_EQ(r.read(60), 0u);
  EXPECT_EQ(r.read(48), 0xDEADBEEFCAFEull);
  EXPECT_EQ(r.read(12), 0x123u);
}

TEST(BitWriter, Full64BitField) {
  PackedState p;
  BitWriter w(p);
  w.write(3, 2);
  w.write(~0ull, 64);
  BitReader r(p);
  EXPECT_EQ(r.read(2), 3u);
  EXPECT_EQ(r.read(64), ~0ull);
}

TEST(BitWriter, RandomizedRoundTrip) {
  Rng rng(1234);
  for (int iter = 0; iter < 200; ++iter) {
    PackedState p;
    BitWriter w(p);
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    unsigned total = 0;
    while (true) {
      unsigned bits = 1 + static_cast<unsigned>(rng.next_below(24));
      if (total + bits > kPackedWords * 64) break;
      std::uint64_t value = rng.next_u64() & ((1ull << bits) - 1);
      fields.emplace_back(value, bits);
      w.write(value, bits);
      total += bits;
      if (fields.size() >= 30) break;
    }
    BitReader r(p);
    for (const auto& [value, bits] : fields) {
      EXPECT_EQ(r.read(bits), value);
    }
  }
}

TEST(PackedState, EqualityAndOrdering) {
  PackedState a, b;
  EXPECT_EQ(a, b);
  b.words[2] = 1;
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(PackedState, HexRendering) {
  PackedState p;
  p.words[0] = 0xAB;
  EXPECT_EQ(p.to_hex(),
            "000000000000000000000000000000000000000000000000"
            "00000000000000ab");
}

TEST(PackedState, HashSpreadsNearbyStates) {
  // States differing in one low bit must not collide pairwise (would wreck
  // the BFS hash map's bucket distribution).
  std::unordered_set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    PackedState p;
    p.words[0] = i;
    hashes.insert(hash_value(p));
  }
  EXPECT_GT(hashes.size(), 4090u);
}

TEST(PackedState, UsableAsUnorderedMapKey) {
  std::unordered_set<PackedState> set;
  PackedState a;
  a.words[1] = 42;
  set.insert(a);
  set.insert(a);
  EXPECT_EQ(set.size(), 1u);
  PackedState b = a;
  b.words[3] = 1;
  set.insert(b);
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace tta::util
