#include "guardian/coupler.h"

#include <gtest/gtest.h>

namespace tta::guardian {
namespace {

using ttpc::ChannelFrame;
using ttpc::FrameKind;

ChannelFrame cs(ttpc::SlotNumber id) { return {FrameKind::kColdStart, id}; }
ChannelFrame cstate(ttpc::SlotNumber id) { return {FrameKind::kCState, id}; }

TEST(MergeTransmissions, EmptyIsSilence) {
  EXPECT_EQ(AbstractCoupler::merge_transmissions({}).kind, FrameKind::kNone);
  EXPECT_EQ(AbstractCoupler::merge_transmissions({ChannelFrame{}}).kind,
            FrameKind::kNone);
}

TEST(MergeTransmissions, SingleSenderPassesThrough) {
  auto merged = AbstractCoupler::merge_transmissions({ChannelFrame{}, cs(2)});
  EXPECT_EQ(merged, cs(2));
}

TEST(MergeTransmissions, CollisionBecomesNoise) {
  auto merged = AbstractCoupler::merge_transmissions({cs(1), cstate(3)});
  EXPECT_EQ(merged.kind, FrameKind::kBad);
  EXPECT_EQ(merged.id, 0);
}

TEST(Transfer, FaultFreePassesInputAndBuffers) {
  AbstractCoupler c(Authority::kFullShifting);
  CouplerState st;
  auto out = c.transfer(cstate(3), CouplerFault::kNone, st);
  EXPECT_EQ(out, cstate(3));
  EXPECT_EQ(st.buffered_frame, FrameKind::kCState);
  EXPECT_EQ(st.buffered_id, 3);
}

TEST(Transfer, SilenceFaultDropsFrame) {
  AbstractCoupler c(Authority::kPassive);
  CouplerState st;
  auto out = c.transfer(cstate(3), CouplerFault::kSilence, st);
  EXPECT_EQ(out.kind, FrameKind::kNone);
  // Nothing identifiable hit the channel, so the buffer is unchanged.
  EXPECT_EQ(st.buffered_frame, FrameKind::kNone);
}

TEST(Transfer, BadFrameFaultOverridesInput) {
  AbstractCoupler c(Authority::kTimeWindows);
  CouplerState st;
  auto out = c.transfer(cstate(3), CouplerFault::kBadFrame, st);
  EXPECT_EQ(out.kind, FrameKind::kBad);
  EXPECT_EQ(st.buffered_id, 0);  // noise has no id to buffer
}

TEST(Transfer, OutOfSlotReplaysBufferedFrame) {
  AbstractCoupler c(Authority::kFullShifting);
  CouplerState st;
  c.transfer(cs(1), CouplerFault::kNone, st);  // buffers the cold start
  auto out = c.transfer(ChannelFrame{}, CouplerFault::kOutOfSlot, st);
  EXPECT_EQ(out, cs(1));  // the paper's replay fault
  // The replayed frame re-buffers itself.
  EXPECT_EQ(st.buffered_id, 1);
}

TEST(Transfer, OutOfSlotOverridesLiveTraffic) {
  // The model's channel_frame definition puts the buffered frame on the
  // channel regardless of what was sent this slot.
  AbstractCoupler c(Authority::kFullShifting);
  CouplerState st;
  c.transfer(cs(1), CouplerFault::kNone, st);
  auto out = c.transfer(cstate(2), CouplerFault::kOutOfSlot, st);
  EXPECT_EQ(out, cs(1));
}

TEST(Transfer, BufferTracksLastIdentifiableFrame) {
  AbstractCoupler c(Authority::kFullShifting);
  CouplerState st;
  c.transfer(cs(1), CouplerFault::kNone, st);
  c.transfer(cstate(2), CouplerFault::kNone, st);
  EXPECT_EQ(st.buffered_frame, FrameKind::kCState);
  EXPECT_EQ(st.buffered_id, 2);
  // Silence does not clear the buffer ("if channel_id = 0 then buffered_id").
  c.transfer(ChannelFrame{}, CouplerFault::kNone, st);
  EXPECT_EQ(st.buffered_id, 2);
}

TEST(Transfer, BufferCarriesMembershipImage) {
  AbstractCoupler c(Authority::kFullShifting);
  CouplerState st;
  ChannelFrame f = cstate(2);
  f.membership = 0b0101;
  c.transfer(f, CouplerFault::kNone, st);
  auto out = c.transfer(ChannelFrame{}, CouplerFault::kOutOfSlot, st);
  EXPECT_EQ(out.membership, 0b0101);
}

TEST(Transfer, InitialBufferReplaysNothing) {
  AbstractCoupler c(Authority::kFullShifting);
  CouplerState st;  // buffered_frame = none, id = 0
  auto out = c.transfer(cstate(2), CouplerFault::kOutOfSlot, st);
  EXPECT_EQ(out.kind, FrameKind::kNone);
}

TEST(Transfer, ReplayImpossibleWithoutBufferingAuthority) {
  AbstractCoupler c(Authority::kSmallShifting);
  CouplerState st;
  EXPECT_DEATH(c.transfer(cstate(2), CouplerFault::kOutOfSlot, st),
               "fault_possible");
}

}  // namespace
}  // namespace tta::guardian
