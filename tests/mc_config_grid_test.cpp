// Full configuration-grid verdicts: authority x big-bang x fusion rule.
// Pins the expected outcome of the paper's property for every combination
// the model supports, so any semantic drift in the protocol core changes a
// known-answer test.
#include <gtest/gtest.h>

#include "mc/checker.h"

namespace tta::mc {
namespace {

struct GridCase {
  guardian::Authority authority;
  bool big_bang;
  bool bad_dominates_fusion;
  bool expect_holds;
};

class ConfigGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ConfigGrid, VerdictMatchesExpectation) {
  const GridCase& p = GetParam();
  ModelConfig cfg;
  cfg.authority = p.authority;
  cfg.protocol.big_bang_enabled = p.big_bang;
  cfg.protocol.bad_dominates_fusion = p.bad_dominates_fusion;
  TtpcStarModel model(cfg);
  auto res = Checker(model).check(no_integrated_node_freezes());
  EXPECT_EQ(res.holds(), p.expect_holds)
      << guardian::to_string(p.authority) << " big_bang=" << p.big_bang
      << " bad_dominates=" << p.bad_dominates_fusion;
  EXPECT_TRUE(res.stats.exhausted);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ConfigGrid,
    ::testing::Values(
        // TTP/C fusion, big bang on: the paper's matrix.
        GridCase{guardian::Authority::kPassive, true, false, true},
        GridCase{guardian::Authority::kTimeWindows, true, false, true},
        GridCase{guardian::Authority::kSmallShifting, true, false, true},
        GridCase{guardian::Authority::kFullShifting, true, false, false},
        // Big bang off: integration hygiene is gone, but with non-buffering
        // couplers there is still no frame that can masquerade — the
        // property still holds; with buffering it stays broken.
        GridCase{guardian::Authority::kPassive, false, false, true},
        GridCase{guardian::Authority::kSmallShifting, false, false, true},
        GridCase{guardian::Authority::kFullShifting, false, false, false},
        // Pessimistic fusion. Because noise is *invalid* (feeds neither
        // counter), incorrect-dominates only matters when one channel
        // carries a valid-but-wrong frame while the other is correct —
        // which requires a frame store. Non-buffering couplers therefore
        // keep the property under either fusion rule; the buffering
        // coupler stays broken (and loses even the channel-redundancy
        // masking, see the Extra test).
        GridCase{guardian::Authority::kPassive, true, true, true},
        GridCase{guardian::Authority::kTimeWindows, true, true, true},
        GridCase{guardian::Authority::kSmallShifting, true, true, true},
        GridCase{guardian::Authority::kFullShifting, true, true, false}));

TEST(ConfigGridExtra, PessimisticFusionForfeitsChannelRedundancy) {
  // Under TTP/C's optimistic rule, a replay on one channel is masked
  // whenever the other channel carries the correct frame; pessimistic
  // fusion forfeits that masking, so failures can only get easier to
  // reach: the shortest counterexample is no longer than the optimistic
  // one.
  ModelConfig opt;
  opt.authority = guardian::Authority::kFullShifting;
  ModelConfig pess = opt;
  pess.protocol.bad_dominates_fusion = true;
  TtpcStarModel m_opt(opt);
  TtpcStarModel m_pess(pess);
  auto r_opt = Checker(m_opt).check(no_integrated_node_freezes());
  auto r_pess = Checker(m_pess).check(no_integrated_node_freezes());
  ASSERT_FALSE(r_opt.holds());
  ASSERT_FALSE(r_pess.holds());
  EXPECT_LE(r_pess.trace.size(), r_opt.trace.size());
}

}  // namespace
}  // namespace tta::mc
