// The fail-point contract (util/fail_point.h): the grammar parses exactly
// what docs/SERVICE.md promises and rejects everything else with a
// position-carrying error; an unarmed site never fires and never pays more
// than one relaxed load; firing is a pure function of (seed, site,
// hit-index) so a chaos run replays bit-identically from its seed; hit
// windows and probabilities compose; and the runtime API (arm / disarm /
// snapshot / render) keeps honest counters under concurrent evaluation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/fail_point.h"

namespace tta::util {
namespace {

/// Every test leaves the global registry empty — the suite shares one
/// process with gtest's other-suite ordering.
class FailPointTest : public testing::Test {
 protected:
  void TearDown() override { FailPoints::instance().disarm_all(); }
};

TEST_F(FailPointTest, CompiledInForTests) {
  // The test binary builds with TTA_FAILPOINTS=ON; everything below
  // depends on it.
  ASSERT_TRUE(FailPoints::compiled_in());
}

TEST_F(FailPointTest, ParseGrammarRoundTrip) {
  std::vector<std::pair<std::string, FailSpec>> parsed;
  std::string error;
  ASSERT_TRUE(parse_failpoints(
      "a.site=error;b=delay(25):prob(300000);"
      "c=short-io(7):hits(3);d=abort:hits(2,5);e=error:prob(0)",
      &parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), 5u);

  EXPECT_EQ(parsed[0].first, "a.site");
  EXPECT_EQ(parsed[0].second.action, FailAction::kError);
  EXPECT_EQ(parsed[0].second.prob_ppm, 1'000'000u);
  EXPECT_EQ(parsed[0].second.first_hit, 1u);

  EXPECT_EQ(parsed[1].second.action, FailAction::kDelay);
  EXPECT_EQ(parsed[1].second.arg, 25u);
  EXPECT_EQ(parsed[1].second.prob_ppm, 300'000u);

  EXPECT_EQ(parsed[2].second.action, FailAction::kShortIo);
  EXPECT_EQ(parsed[2].second.arg, 7u);
  EXPECT_EQ(parsed[2].second.first_hit, 3u);
  EXPECT_EQ(parsed[2].second.last_hit, UINT64_MAX);

  EXPECT_EQ(parsed[3].second.action, FailAction::kAbort);
  EXPECT_EQ(parsed[3].second.first_hit, 2u);
  EXPECT_EQ(parsed[3].second.last_hit, 5u);

  EXPECT_EQ(parsed[4].second.prob_ppm, 0u);
}

TEST_F(FailPointTest, ParseRejectsMalformedConfigs) {
  const char* bad[] = {
      "nosite",                 // no '='
      "=error",                 // empty site
      "s=",                     // empty action
      "s=explode",              // unknown action
      "s=delay",                // delay needs (ms)
      "s=short-io",             // short-io needs (n)
      "s=error:prob(2000000)",  // prob > 1e6
      "s=error:prob(x)",        // not a number
      "s=error:hits(0)",        // hits are 1-based
      "s=error:hits(5,3)",      // empty window
      "s=error:bogus(1)",       // unknown modifier
  };
  for (const char* config : bad) {
    std::vector<std::pair<std::string, FailSpec>> parsed;
    std::string error;
    EXPECT_FALSE(parse_failpoints(config, &parsed, &error)) << config;
    EXPECT_FALSE(error.empty()) << config;
  }
}

TEST_F(FailPointTest, UnarmedSiteIsInert) {
  const FailDecision d = fail_point("test.never.armed");
  EXPECT_FALSE(d.fired());
  EXPECT_FALSE(d.error());
  EXPECT_FALSE(d.short_io());
  // Unarmed evaluation must not create registry state.
  EXPECT_EQ(FailPoints::instance().hits("test.never.armed"), 0u);
}

TEST_F(FailPointTest, ArmFireDisarm) {
  std::string error;
  ASSERT_TRUE(FailPoints::instance().arm("test.basic=error", &error))
      << error;
  EXPECT_TRUE(fail_point("test.basic").error());
  EXPECT_EQ(FailPoints::instance().hits("test.basic"), 1u);
  EXPECT_EQ(FailPoints::instance().fired("test.basic"), 1u);

  FailPoints::instance().disarm("test.basic");
  EXPECT_FALSE(fail_point("test.basic").fired());
  EXPECT_EQ(FailPoints::instance().hits("test.basic"), 0u);
}

TEST_F(FailPointTest, HitWindowBoundsFiring) {
  std::string error;
  ASSERT_TRUE(
      FailPoints::instance().arm("test.window=error:hits(2,3)", &error))
      << error;
  EXPECT_FALSE(fail_point("test.window").fired());  // hit 1: before
  EXPECT_TRUE(fail_point("test.window").fired());   // hit 2
  EXPECT_TRUE(fail_point("test.window").fired());   // hit 3
  EXPECT_FALSE(fail_point("test.window").fired());  // hit 4: after
  EXPECT_EQ(FailPoints::instance().hits("test.window"), 4u);
  EXPECT_EQ(FailPoints::instance().fired("test.window"), 2u);
}

TEST_F(FailPointTest, ShortIoCarriesArgument) {
  std::string error;
  ASSERT_TRUE(FailPoints::instance().arm("test.shortio=short-io(5)", &error))
      << error;
  const FailDecision d = fail_point("test.shortio");
  ASSERT_TRUE(d.short_io());
  EXPECT_EQ(d.arg, 5u);
}

TEST_F(FailPointTest, DelayActionSleeps) {
  std::string error;
  ASSERT_TRUE(FailPoints::instance().arm("test.delay=delay(30)", &error))
      << error;
  const auto start = std::chrono::steady_clock::now();
  const FailDecision d = fail_point("test.delay");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(d.fired());
  EXPECT_EQ(d.action, FailAction::kDelay);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            30);
}

TEST_F(FailPointTest, DeterministicFireIsPureInItsInputs) {
  // The documented firing function: same (seed, site, hit) -> same answer,
  // and the answer actually varies across hits at interior probabilities.
  bool saw_fire = false;
  bool saw_skip = false;
  for (std::uint64_t hit = 1; hit <= 64; ++hit) {
    const bool a =
        FailPoints::deterministic_fire(42, "test.det", hit, 500'000);
    const bool b =
        FailPoints::deterministic_fire(42, "test.det", hit, 500'000);
    EXPECT_EQ(a, b) << "hit " << hit;
    (a ? saw_fire : saw_skip) = true;
  }
  EXPECT_TRUE(saw_fire);
  EXPECT_TRUE(saw_skip);
  // Boundary probabilities short-circuit.
  EXPECT_TRUE(FailPoints::deterministic_fire(1, "s", 1, 1'000'000));
  EXPECT_FALSE(FailPoints::deterministic_fire(1, "s", 1, 0));
  // Seed and site both matter: some hit in [1,64] must disagree.
  bool seed_differs = false;
  bool site_differs = false;
  for (std::uint64_t hit = 1; hit <= 64; ++hit) {
    seed_differs |=
        FailPoints::deterministic_fire(42, "test.det", hit, 500'000) !=
        FailPoints::deterministic_fire(43, "test.det", hit, 500'000);
    site_differs |=
        FailPoints::deterministic_fire(42, "test.det", hit, 500'000) !=
        FailPoints::deterministic_fire(42, "test.other", hit, 500'000);
  }
  EXPECT_TRUE(seed_differs);
  EXPECT_TRUE(site_differs);
}

TEST_F(FailPointTest, RearmingReplaysTheSameFiringSequence) {
  // The reproducibility claim end to end: arm, record, disarm, re-arm
  // with the same seed -> identical fire/skip sequence.
  FailPoints::instance().set_seed(7);
  std::string error;
  ASSERT_TRUE(
      FailPoints::instance().arm("test.replay=error:prob(400000)", &error))
      << error;
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) {
    first.push_back(fail_point("test.replay").fired());
  }
  FailPoints::instance().disarm_all();

  FailPoints::instance().set_seed(7);
  ASSERT_TRUE(
      FailPoints::instance().arm("test.replay=error:prob(400000)", &error))
      << error;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fail_point("test.replay").fired(), first[i]) << "hit " << i;
  }
  // And the sequence matches the static function hit by hit.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(first[static_cast<std::size_t>(i)],
              FailPoints::deterministic_fire(
                  7, "test.replay", static_cast<std::uint64_t>(i) + 1,
                  400'000));
  }
}

TEST_F(FailPointTest, ArmViaMultiSiteConfigAndRender) {
  std::string error;
  ASSERT_TRUE(FailPoints::instance().arm(
      "test.r1=error:hits(1,1);test.r2=short-io(3)", &error))
      << error;
  EXPECT_TRUE(fail_point("test.r1").error());
  EXPECT_FALSE(fail_point("test.r1").fired());
  EXPECT_TRUE(fail_point("test.r2").short_io());
  const std::string rendered = FailPoints::instance().render();
  EXPECT_NE(rendered.find("site=test.r1 hits=2 fired=1"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("site=test.r2 hits=1 fired=1"), std::string::npos)
      << rendered;
}

TEST_F(FailPointTest, ArmReportsPositionOnError) {
  std::string error;
  EXPECT_FALSE(FailPoints::instance().arm("ok=error;bad=explode", &error));
  EXPECT_NE(error.find("explode"), std::string::npos) << error;
  // A failed arm must not leave earlier sites half-armed.
  EXPECT_FALSE(fail_point("ok").fired());
}

TEST_F(FailPointTest, ConcurrentEvaluationKeepsHonestCounters) {
  // Hits are sequenced under the registry lock, so with prob(1e6) every
  // hit fires and the totals must be exact across racing threads.
  std::string error;
  ASSERT_TRUE(FailPoints::instance().arm("test.mt=error", &error)) << error;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        (void)fail_point("test.mt");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(FailPoints::instance().hits("test.mt"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(FailPoints::instance().fired("test.mt"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace tta::util
