#include "guardian/central_guardian.h"

#include <gtest/gtest.h>

#include "ttpc/config.h"

namespace tta::guardian {
namespace {

using ttpc::ChannelFrame;
using ttpc::FrameKind;

ttpc::Medl medl() { return ttpc::Medl::uniform(ttpc::ProtocolConfig{}); }

GuardianConfig config(Authority a) {
  GuardianConfig c;
  c.authority = a;
  return c;
}

PortTransmission tx(ttpc::NodeId port, FrameKind kind, ttpc::SlotNumber id,
                    wire::SignalAttrs attrs = wire::nominal_signal()) {
  return PortTransmission{port, ChannelFrame{kind, id}, attrs};
}

TEST(CentralGuardian, ForwardsScheduledSender) {
  CentralGuardian g(config(Authority::kTimeWindows), medl());
  auto res = g.arbitrate(2, {tx(2, FrameKind::kCState, 2)},
                         CouplerFault::kNone);
  EXPECT_EQ(res.out, (ChannelFrame{FrameKind::kCState, 2}));
  ASSERT_EQ(res.actions.size(), 1u);
  EXPECT_EQ(res.actions[0], GuardianAction::kForwarded);
}

TEST(CentralGuardian, WindowBlocksUnscheduledSender) {
  CentralGuardian g(config(Authority::kTimeWindows), medl());
  auto res = g.arbitrate(2, {tx(3, FrameKind::kCState, 2)},
                         CouplerFault::kNone);
  EXPECT_EQ(res.out.kind, FrameKind::kNone);
  EXPECT_EQ(res.actions[0], GuardianAction::kBlockedWindow);
}

TEST(CentralGuardian, PassiveCouplerCannotBlock) {
  CentralGuardian g(config(Authority::kPassive), medl());
  auto res = g.arbitrate(2, {tx(3, FrameKind::kCState, 2)},
                         CouplerFault::kNone);
  EXPECT_EQ(res.out.kind, FrameKind::kCState);  // forwarded despite window
}

TEST(CentralGuardian, UnsyncedGuardianCannotPoliceWindows) {
  CentralGuardian g(config(Authority::kTimeWindows), medl());
  auto res = g.arbitrate(std::nullopt, {tx(3, FrameKind::kColdStart, 3)},
                         CouplerFault::kNone);
  EXPECT_EQ(res.out.kind, FrameKind::kColdStart);
}

TEST(CentralGuardian, ActivitySupervisionCutsBabbler) {
  CentralGuardian g(config(Authority::kTimeWindows), medl());
  // A babbling port transmits every slot; from the third consecutive slot
  // it must be cut off, even before the guardian has a time base.
  int forwarded = 0;
  for (int i = 0; i < 6; ++i) {
    auto res = g.arbitrate(std::nullopt, {tx(1, FrameKind::kOther, 1)},
                           CouplerFault::kNone);
    if (res.actions[0] != GuardianAction::kBlockedWindow) ++forwarded;
  }
  EXPECT_EQ(forwarded, 2);
}

TEST(CentralGuardian, ActivitySupervisionAllowsOncePerRound) {
  CentralGuardian g(config(Authority::kTimeWindows), medl());
  // One transmission every 4th slot (a legal cold-start retry pattern).
  for (int round = 0; round < 4; ++round) {
    auto res = g.arbitrate(std::nullopt, {tx(1, FrameKind::kColdStart, 1)},
                           CouplerFault::kNone);
    EXPECT_EQ(res.actions[0], GuardianAction::kForwarded) << round;
    for (int quiet = 0; quiet < 3; ++quiet) {
      g.arbitrate(std::nullopt, {}, CouplerFault::kNone);
    }
  }
}

TEST(CentralGuardian, PassiveCouplerDoesNotSuperviseActivity) {
  CentralGuardian g(config(Authority::kPassive), medl());
  for (int i = 0; i < 6; ++i) {
    auto res = g.arbitrate(std::nullopt, {tx(1, FrameKind::kOther, 1)},
                           CouplerFault::kNone);
    EXPECT_EQ(res.actions[0], GuardianAction::kForwarded);
  }
}

TEST(CentralGuardian, ReshapesSosSignalToNominal) {
  CentralGuardian g(config(Authority::kSmallShifting), medl());
  wire::SignalAttrs marginal{615.0, 500.0};
  auto res =
      g.arbitrate(2, {tx(2, FrameKind::kCState, 2, marginal)},
                  CouplerFault::kNone);
  EXPECT_EQ(res.actions[0], GuardianAction::kReshaped);
  EXPECT_EQ(res.attrs, wire::nominal_signal());
}

TEST(CentralGuardian, BlocksUnrecoverableSignal) {
  CentralGuardian g(config(Authority::kSmallShifting), medl());
  wire::SignalAttrs dead{100.0, 0.0};  // below recoverable amplitude
  auto res = g.arbitrate(2, {tx(2, FrameKind::kCState, 2, dead)},
                         CouplerFault::kNone);
  EXPECT_EQ(res.actions[0], GuardianAction::kBlockedSignal);
  EXPECT_EQ(res.out.kind, FrameKind::kNone);
}

TEST(CentralGuardian, TimeWindowsDoNotReshape) {
  CentralGuardian g(config(Authority::kTimeWindows), medl());
  wire::SignalAttrs marginal{615.0, 0.0};
  auto res = g.arbitrate(2, {tx(2, FrameKind::kCState, 2, marginal)},
                         CouplerFault::kNone);
  EXPECT_EQ(res.actions[0], GuardianAction::kForwarded);
  EXPECT_EQ(res.attrs, marginal);  // SOS attrs pass through to receivers
}

TEST(CentralGuardian, SemanticAnalysisBlocksStartupMasquerade) {
  CentralGuardian g(config(Authority::kSmallShifting), medl());
  // Port 1 sends a cold-start frame claiming slot 2, before sync.
  auto res = g.arbitrate(std::nullopt, {tx(1, FrameKind::kColdStart, 2)},
                         CouplerFault::kNone);
  EXPECT_EQ(res.actions[0], GuardianAction::kBlockedMasquerade);
  EXPECT_EQ(res.out.kind, FrameKind::kNone);
}

TEST(CentralGuardian, SemanticAnalysisBlocksBadCState) {
  CentralGuardian g(config(Authority::kSmallShifting), medl());
  // Synced guardian at slot 2; the scheduled sender claims slot 3.
  auto res = g.arbitrate(2, {tx(2, FrameKind::kCState, 3)},
                         CouplerFault::kNone);
  EXPECT_EQ(res.actions[0], GuardianAction::kBlockedBadCState);
}

TEST(CentralGuardian, TimeWindowsLackSemanticAnalysis) {
  CentralGuardian g(config(Authority::kTimeWindows), medl());
  auto res = g.arbitrate(std::nullopt, {tx(1, FrameKind::kColdStart, 2)},
                         CouplerFault::kNone);
  EXPECT_EQ(res.actions[0], GuardianAction::kForwarded);  // masquerade passes
}

TEST(CentralGuardian, TinyBufferDisablesSemanticAnalysis) {
  GuardianConfig cfg = config(Authority::kSmallShifting);
  cfg.buffer_bits = 8;  // below SemanticAnalyzer::kInspectionBits
  CentralGuardian g(cfg, medl());
  auto res = g.arbitrate(std::nullopt, {tx(1, FrameKind::kColdStart, 2)},
                         CouplerFault::kNone);
  EXPECT_EQ(res.actions[0], GuardianAction::kForwarded);
}

TEST(CentralGuardian, CollisionsBecomeNoise) {
  CentralGuardian g(config(Authority::kPassive), medl());
  auto res = g.arbitrate(std::nullopt,
                         {tx(1, FrameKind::kColdStart, 1),
                          tx(2, FrameKind::kColdStart, 2)},
                         CouplerFault::kNone);
  EXPECT_EQ(res.out.kind, FrameKind::kBad);
}

TEST(CentralGuardian, SilenceFaultSilencesChannel) {
  CentralGuardian g(config(Authority::kSmallShifting), medl());
  auto res = g.arbitrate(2, {tx(2, FrameKind::kCState, 2)},
                         CouplerFault::kSilence);
  EXPECT_EQ(res.out.kind, FrameKind::kNone);
}

TEST(CentralGuardian, FullShiftingReplayFault) {
  CentralGuardian g(config(Authority::kFullShifting), medl());
  g.arbitrate(1, {tx(1, FrameKind::kCState, 1)}, CouplerFault::kNone);
  auto res = g.arbitrate(2, {}, CouplerFault::kOutOfSlot);
  EXPECT_EQ(res.out, (ChannelFrame{FrameKind::kCState, 1}));
  EXPECT_EQ(res.attrs, wire::nominal_signal());
}

TEST(CentralGuardian, BufferStateObservable) {
  CentralGuardian g(config(Authority::kFullShifting), medl());
  g.arbitrate(1, {tx(1, FrameKind::kColdStart, 1)}, CouplerFault::kNone);
  EXPECT_EQ(g.coupler_state().buffered_frame, FrameKind::kColdStart);
  EXPECT_EQ(g.coupler_state().buffered_id, 1);
}

}  // namespace
}  // namespace tta::guardian
