// Cooperative cancellation in both reachability engines: a fired
// CancelToken (manual or deadline) must yield an explicit kInconclusive
// verdict with honest partial statistics — never a hang, never a
// fabricated HOLDS/VIOLATED — and a token that never fires must not
// perturb results at all.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "mc/checker.h"
#include "mc/parallel_checker.h"
#include "util/cancel_token.h"

namespace tta::mc {
namespace {

ModelConfig config(guardian::Authority a, std::uint8_t nodes = 4) {
  ModelConfig cfg;
  cfg.authority = a;
  cfg.protocol.num_nodes = nodes;
  cfg.protocol.num_slots = nodes;
  return cfg;
}

Checker<TtpcStarModel>::Goal all_active(const TtpcStarModel& model) {
  std::size_t n = model.num_nodes();
  return [n](const WorldState& w) {
    for (std::size_t i = 0; i < n; ++i) {
      if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
    }
    return true;
  };
}

TEST(CancelToken, ManualAndDeadlineFiring) {
  util::CancelToken manual;
  EXPECT_FALSE(manual.cancelled_now());
  manual.request_cancel();
  EXPECT_TRUE(manual.cancelled());
  EXPECT_TRUE(manual.cancelled_now());

  util::CancelToken deadline =
      util::CancelToken::after(std::chrono::milliseconds(20));
  EXPECT_FALSE(deadline.cancelled_now());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(deadline.cancelled_now());
  // Once observed, the fast-path flag reports it too.
  EXPECT_TRUE(deadline.cancelled());
}

TEST(CancelTokenDeadline, OvershootIsBoundedByTheClockPollPeriod) {
  // The amortized deadline clock promises (util/cancel_token.h): a fired
  // deadline is observed at most kClockPollPeriod cancelled() polls after
  // the clock passed it. Desynchronize the poll counter, let the deadline
  // fire, and count the polls until observation.
  util::CancelToken token =
      util::CancelToken::after(std::chrono::milliseconds(25));
  // A handful of pre-deadline polls leave the counter mid-period (these
  // take nanoseconds; the deadline is comfortably far away).
  for (int i = 0; i < 7; ++i) (void)token.cancelled();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The deadline has passed on the wall clock but the fast path may not
  // know yet. Poll until it fires: the worst case is one full period.
  std::uint64_t polls = 0;
  while (!token.cancelled()) {
    ++polls;
    ASSERT_LE(polls, util::CancelToken::kClockPollPeriod)
        << "deadline overshoot exceeded the documented bound";
  }
  EXPECT_LE(polls, util::CancelToken::kClockPollPeriod);

  // cancelled_now() has no such lag: a fresh token past its deadline
  // reports cancellation on the first forced check.
  util::CancelToken expired =
      util::CancelToken::after(std::chrono::milliseconds(-1));
  EXPECT_TRUE(expired.cancelled_now());
}

TEST(SerialCancel, PreCancelledCheckIsInconclusive) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  util::CancelToken token;
  token.request_cancel();
  auto res = Checker(model).check(no_integrated_node_freezes(),
                                  /*max_states=*/50'000'000, &token);
  EXPECT_EQ(res.verdict, Verdict::kInconclusive);
  EXPECT_TRUE(res.stats.cancelled);
  EXPECT_FALSE(res.stats.exhausted);
  EXPECT_TRUE(res.trace.empty());
  // holds() is computed from the verdict, so a bail can no longer
  // masquerade as a pass (the old bool defaulted to true here).
  EXPECT_FALSE(res.holds());
}

TEST(SerialCancel, DeadlineInterruptsMidRunWithPartialStats) {
  // 4-node passive is ~110k states / hundreds of ms: a few-ms deadline
  // fires mid-search.
  TtpcStarModel model(config(guardian::Authority::kPassive));
  util::CancelToken token =
      util::CancelToken::after(std::chrono::milliseconds(2));
  auto res = Checker(model).check(no_integrated_node_freezes(),
                                  /*max_states=*/50'000'000, &token);
  EXPECT_EQ(res.verdict, Verdict::kInconclusive);
  EXPECT_TRUE(res.stats.cancelled);
  EXPECT_FALSE(res.stats.exhausted);
  EXPECT_GT(res.stats.states_explored, 0u);
  EXPECT_LT(res.stats.states_explored, 110'956u);
}

TEST(SerialCancel, BudgetBailIsInconclusiveNotHolds) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  auto res =
      Checker(model).check(no_integrated_node_freezes(), /*max_states=*/1'000);
  EXPECT_EQ(res.verdict, Verdict::kInconclusive);
  EXPECT_FALSE(res.stats.exhausted);
  EXPECT_FALSE(res.stats.cancelled);  // budget, not cancellation
  EXPECT_FALSE(res.holds());          // a bail is not a pass
}

TEST(SerialCancel, ExhaustiveVerdictsAreExplicit) {
  {
    TtpcStarModel model(config(guardian::Authority::kSmallShifting));
    auto res = Checker(model).check(no_integrated_node_freezes());
    EXPECT_EQ(res.verdict, Verdict::kHolds);
    EXPECT_TRUE(res.stats.exhausted);
  }
  {
    TtpcStarModel model(config(guardian::Authority::kFullShifting));
    auto res = Checker(model).check(no_integrated_node_freezes());
    EXPECT_EQ(res.verdict, Verdict::kViolated);
    EXPECT_FALSE(res.trace.empty());
  }
}

TEST(SerialCancel, LiveTokenThatNeverFiresChangesNothing) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  auto plain = Checker(model).check(no_integrated_node_freezes());
  util::CancelToken token;  // no deadline, never cancelled
  auto tracked = Checker(model).check(no_integrated_node_freezes(),
                                      /*max_states=*/50'000'000, &token);
  EXPECT_EQ(tracked.verdict, plain.verdict);
  EXPECT_EQ(tracked.stats.states_explored, plain.stats.states_explored);
  EXPECT_EQ(tracked.stats.transitions, plain.stats.transitions);
  EXPECT_EQ(tracked.stats.max_depth, plain.stats.max_depth);
  EXPECT_FALSE(tracked.stats.cancelled);
}

TEST(SerialCancel, RecoverabilityHonorsToken) {
  TtpcStarModel model(config(guardian::Authority::kSmallShifting));
  util::CancelToken token;
  token.request_cancel();
  auto res = Checker(model).check_recoverability(
      all_active(model), /*max_states=*/10'000'000, &token);
  EXPECT_EQ(res.verdict, Verdict::kInconclusive);
  EXPECT_TRUE(res.stats.cancelled);
  EXPECT_FALSE(res.stats.exhausted);
  // The bail-out must not leak a fabricated verdict or partial artifacts.
  EXPECT_FALSE(res.recoverable_everywhere);
  EXPECT_EQ(res.dead_states, 0u);
  EXPECT_TRUE(res.witness.empty());
}

TEST(SerialCancel, RecoverabilityBudgetBailStaysInconclusive) {
  TtpcStarModel model(config(guardian::Authority::kFullShifting));
  auto res = Checker(model).check_recoverability(all_active(model),
                                                 /*max_states=*/1'000);
  EXPECT_EQ(res.verdict, Verdict::kInconclusive);
  EXPECT_FALSE(res.stats.cancelled);  // budget, not cancellation
  EXPECT_FALSE(res.stats.exhausted);
}

TEST(ParallelCancel, PreCancelledCheckIsInconclusive) {
  for (unsigned threads : {1u, 4u}) {
    TtpcStarModel model(config(guardian::Authority::kPassive));
    util::CancelToken token;
    token.request_cancel();
    ParallelChecker checker(model, threads);
    auto res = checker.check(no_integrated_node_freezes(),
                             /*max_states=*/50'000'000, &token);
    EXPECT_EQ(res.verdict, Verdict::kInconclusive) << threads;
    EXPECT_TRUE(res.stats.cancelled) << threads;
    EXPECT_FALSE(res.stats.exhausted) << threads;
    EXPECT_TRUE(res.trace.empty()) << threads;
  }
}

TEST(ParallelCancel, DeadlineInterruptsMidRunWithPartialStats) {
  TtpcStarModel model(config(guardian::Authority::kPassive));
  util::CancelToken token =
      util::CancelToken::after(std::chrono::milliseconds(2));
  ParallelChecker checker(model, 4);
  auto res = checker.check(no_integrated_node_freezes(),
                           /*max_states=*/50'000'000, &token);
  EXPECT_EQ(res.verdict, Verdict::kInconclusive);
  EXPECT_TRUE(res.stats.cancelled);
  EXPECT_FALSE(res.stats.exhausted);
  EXPECT_LT(res.stats.states_explored, 110'956u);
}

TEST(ParallelCancel, VerdictsMatchSerialWhenUncancelled) {
  for (guardian::Authority a : {guardian::Authority::kSmallShifting,
                                guardian::Authority::kFullShifting}) {
    TtpcStarModel model(config(a));
    auto serial = Checker(model).check(no_integrated_node_freezes());
    ParallelChecker checker(model, 4);
    util::CancelToken token;  // never fires
    auto parallel = checker.check(no_integrated_node_freezes(),
                                  /*max_states=*/50'000'000, &token);
    EXPECT_EQ(parallel.verdict, serial.verdict) << guardian::to_string(a);
    EXPECT_EQ(parallel.stats.states_explored, serial.stats.states_explored);
    EXPECT_EQ(parallel.stats.transitions, serial.stats.transitions);
  }
}

TEST(ParallelCancel, RecoverabilityHonorsToken) {
  TtpcStarModel model(config(guardian::Authority::kSmallShifting));
  util::CancelToken token;
  token.request_cancel();
  ParallelChecker checker(model, 2);
  auto res = checker.check_recoverability(all_active(model),
                                          /*max_states=*/10'000'000, &token);
  EXPECT_EQ(res.verdict, Verdict::kInconclusive);
  EXPECT_TRUE(res.stats.cancelled);
  EXPECT_FALSE(res.recoverable_everywhere);
  EXPECT_TRUE(res.witness.empty());
}

}  // namespace
}  // namespace tta::mc
