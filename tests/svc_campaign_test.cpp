// The campaign job kind end-to-end at the service layer: the JSON grammar
// (kind-scoped key sets, field+offset errors), the versioned canonical
// encoding with known-answer digest pins, verdict mapping against the fail
// bound, conclusive-only caching, and campaign progress through the async
// session. Labeled `parallel` + `async` (the TSan job runs both).
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/async_service.h"
#include "svc/engine_factory.h"
#include "svc/job_result.h"
#include "svc/job_spec.h"
#include "svc/wire.h"
#include "util/digest.h"

namespace tta::svc {
namespace {

/// The pinned campaign line: the paper's 4-node dual-channel cluster under
/// probabilistic channel silence. Every semantic field is explicit so the
/// digest pin below is self-contained.
const char* kPinnedLine =
    "{\"kind\":\"campaign\",\"nodes\":4,\"channels\":2,"
    "\"criterion\":\"all_active\",\"steps\":64,\"seed\":7,"
    "\"min_trials\":256,\"max_trials\":256,\"batch\":64,"
    "\"epsilon_ppm\":1,\"fail_bound_ppm\":200000,"
    "\"faults\":\"coupler:0:silence:400000;coupler:1:silence:400000\"}";

JobSpec parse_or_die(const std::string& line) {
  JobSpec spec;
  std::string error;
  EXPECT_TRUE(parse_job_line(line, &spec, &error)) << error;
  return spec;
}

std::string parse_error(const std::string& line) {
  JobSpec spec;
  std::string error;
  EXPECT_FALSE(parse_job_line(line, &spec, &error)) << line;
  return error;
}

TEST(CampaignJobSpec, ParsesEveryCampaignKey) {
  const JobSpec spec = parse_or_die(kPinnedLine);
  EXPECT_EQ(spec.kind, JobKind::kCampaign);
  EXPECT_EQ(spec.campaign.num_nodes, 4u);
  EXPECT_EQ(spec.campaign.num_channels, 2u);
  EXPECT_EQ(spec.campaign.criterion,
            campaign::Criterion::kAllActiveReached);
  EXPECT_EQ(spec.campaign.steps, 64u);
  EXPECT_EQ(spec.campaign.seed, 7u);
  EXPECT_EQ(spec.campaign.min_trials, 256u);
  EXPECT_EQ(spec.campaign.max_trials, 256u);
  EXPECT_EQ(spec.campaign.batch_size, 64u);
  EXPECT_EQ(spec.campaign.epsilon_ppm, 1u);
  EXPECT_EQ(spec.campaign.fail_bound_ppm, 200'000u);
  ASSERT_EQ(spec.campaign.coupler_faults.size(), 2u);
  EXPECT_EQ(spec.campaign.coupler_faults[1].channel, 1);
  EXPECT_EQ(spec.campaign.coupler_faults[1].ppm, 400'000u);
  EXPECT_TRUE(spec.campaign.validate().empty());
}

TEST(CampaignJobSpec, KindMayAppearAnywhereOnTheLine) {
  // The scanner resolves "kind" before interpreting keys, so campaign-only
  // keys may precede it.
  const JobSpec spec = parse_or_die(
      "{\"seed\":3,\"faults\":\"coupler:0:silence:1000\","
      "\"kind\":\"campaign\"}");
  EXPECT_EQ(spec.kind, JobKind::kCampaign);
  EXPECT_EQ(spec.campaign.seed, 3u);
}

TEST(CampaignJobSpec, UnknownKeysNameFieldOffsetAndKind) {
  // Offset points at the opening quote of the offending key.
  const std::string line =
      "{\"kind\":\"campaign\",\"faults\":\"coupler:0:silence:1\","
      "\"stepz\":9}";
  const std::string error = parse_error(line);
  EXPECT_NE(error.find("unknown key \"stepz\""), std::string::npos) << error;
  EXPECT_NE(error.find("at offset " +
                       std::to_string(line.find("\"stepz\""))),
            std::string::npos)
      << error;
  EXPECT_NE(error.find("for campaign jobs"), std::string::npos) << error;
}

TEST(CampaignJobSpec, KindsDoNotLeakKeysIntoEachOther) {
  // Verification-only keys are unknown for campaigns...
  EXPECT_NE(parse_error("{\"kind\":\"campaign\",\"property\":\"safety\"}")
                .find("unknown key \"property\""),
            std::string::npos);
  EXPECT_NE(parse_error("{\"kind\":\"campaign\",\"max_states\":100}")
                .find("unknown key \"max_states\""),
            std::string::npos);
  // ...and campaign-only keys are unknown for verification jobs, where
  // they have always been typos.
  EXPECT_NE(parse_error("{\"min_trials\":1}").find(
                "unknown key \"min_trials\" at offset 1 for verify jobs"),
            std::string::npos);
  EXPECT_NE(parse_error("{\"faults\":\"coupler:0:silence:1\"}")
                .find("for verify jobs"),
            std::string::npos);
  // "seed" graduated to a shared key: it seeds the trial streams in a
  // campaign but the swarm engine's racers in a verification job.
  JobSpec verify_seeded;
  std::string error;
  ASSERT_TRUE(parse_job_line("{\"seed\":9}", &verify_seeded, &error))
      << error;
  EXPECT_EQ(verify_seeded.kind, JobKind::kVerify);
  EXPECT_EQ(verify_seeded.seed, 9u);
}

TEST(CampaignJobSpec, BadValuesNameFieldOffsetAndValue) {
  const std::string line =
      "{\"kind\":\"campaign\",\"faults\":\"coupler:0:silence:1\","
      "\"epsilon_ppm\":0}";
  const std::string error = parse_error(line);
  EXPECT_NE(error.find("bad value for \"epsilon_ppm\""), std::string::npos)
      << error;
  EXPECT_NE(error.find(": 0"), std::string::npos) << error;

  // Fault-dictionary errors carry the grammar's diagnosis plus the offset
  // of the "faults" key itself.
  const std::string dict_line =
      "{\"kind\":\"campaign\",\"faults\":\"node:1:warp_core:5\"}";
  const std::string dict_error = parse_error(dict_line);
  EXPECT_NE(dict_error.find("unknown node fault mode"), std::string::npos)
      << dict_error;
  EXPECT_NE(dict_error.find("at offset " + std::to_string(
                                dict_line.find("\"faults\""))),
            std::string::npos)
      << dict_error;
}

TEST(CampaignJobSpec, SharedChannelsKeySetsBothKinds) {
  const JobSpec campaign = parse_or_die(
      "{\"kind\":\"campaign\",\"channels\":1,"
      "\"faults\":\"coupler:0:silence:1\"}");
  EXPECT_EQ(campaign.campaign.num_channels, 1u);
  EXPECT_EQ(campaign.model.num_couplers, 1u);

  const JobSpec verify = parse_or_die("{\"channels\":1}");
  EXPECT_EQ(verify.kind, JobKind::kVerify);
  EXPECT_EQ(verify.model.num_couplers, 1u);
}

TEST(CampaignJobSpec, ValidationRunsAfterParsing) {
  // Well-formed JSON, inconsistent plan: the spec validator's message
  // surfaces as the parse error.
  EXPECT_NE(parse_error("{\"kind\":\"campaign\",\"min_trials\":10,"
                        "\"max_trials\":5,"
                        "\"faults\":\"coupler:0:silence:1\"}")
                .find("min_trials > max_trials"),
            std::string::npos);
  // An empty dictionary is a plan that samples nothing.
  EXPECT_NE(parse_error("{\"kind\":\"campaign\"}").find("dictionary"),
            std::string::npos);
}

TEST(CampaignJobSpec, CanonicalBytesAreVersioned) {
  const JobSpec campaign = parse_or_die(kPinnedLine);
  const std::vector<std::uint8_t> bytes = campaign.canonical_bytes();
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes[0], 0x81u);  // campaign format version

  // The paper's dual-coupler verification layout stays v1 byte-for-byte;
  // the single-coupler point re-keys under version 2 with a trailing
  // coupler-count byte.
  const JobSpec v1 = parse_or_die("{}");
  EXPECT_EQ(v1.canonical_bytes()[0], 1u);
  const JobSpec v2 = parse_or_die("{\"channels\":1}");
  EXPECT_EQ(v2.canonical_bytes()[0], 2u);
  EXPECT_EQ(v2.canonical_bytes().size(), v1.canonical_bytes().size() + 1);
  EXPECT_EQ(v2.canonical_bytes().back(), 1u);
}

TEST(CampaignJobSpec, DigestKnownAnswers) {
  // Known-answer pin for the campaign encoding: if this moves, every
  // cached campaign estimate silently re-keys — bump deliberately, never
  // accidentally.
  EXPECT_EQ(util::digest_hex(parse_or_die(kPinnedLine).digest()),
            "c4075cbe9fcf663d");
  // The single-coupler verification point (v2 layout).
  EXPECT_EQ(util::digest_hex(parse_or_die("{\"channels\":1}").digest()),
            "0326428fefbdf348");
}

TEST(CampaignJobSpec, ExecutionHintsStayOutOfTheDigest) {
  const JobSpec base = parse_or_die(kPinnedLine);
  JobSpec hints = base;
  hints.threads = 8;
  hints.deadline_ms = 1234;
  hints.engine = EngineChoice::kSerial;
  EXPECT_EQ(hints.digest(), base.digest());

  // Every semantic campaign field re-keys.
  JobSpec other = base;
  other.campaign.seed = 8;
  EXPECT_NE(other.digest(), base.digest());
  other = base;
  other.campaign.fail_bound_ppm = 300'000;
  EXPECT_NE(other.digest(), base.digest());
  other = base;
  other.campaign.coupler_faults[0].ppm = 400'001;
  EXPECT_NE(other.digest(), base.digest());
  other = base;
  other.campaign.num_channels = 1;
  other.campaign.coupler_faults.pop_back();
  EXPECT_NE(other.digest(), base.digest());
}

TEST(CampaignJobSpec, ConfigLabelNamesTheClusterShape) {
  EXPECT_EQ(config_label(parse_or_die(kPinnedLine)),
            "campaign/full_shifting/n4/m2");
}

TEST(CampaignJobSpec, WireRequestCarriesPriorityAndId) {
  WireRequest request;
  std::string error;
  ASSERT_TRUE(parse_request_line(
      "{\"kind\":\"campaign\",\"faults\":\"coupler:0:silence:1\","
      "\"priority\":5,\"id\":\"c-1\"}",
      &request, &error))
      << error;
  EXPECT_EQ(request.spec.kind, JobKind::kCampaign);
  EXPECT_EQ(request.priority, 5);
  EXPECT_EQ(request.id, "c-1");
}

// ---- Execution: verdict mapping, caching, session progress -------------

/// A conclusive low-probability campaign: single-channel silence at 1%
/// with the bound at 50% — the interval clears the bound from below within
/// min_trials, so the verdict is HOLDS.
JobSpec holds_spec() {
  return parse_or_die(
      "{\"kind\":\"campaign\",\"criterion\":\"all_active\",\"steps\":32,"
      "\"seed\":5,\"min_trials\":64,\"max_trials\":4096,\"batch\":64,"
      "\"epsilon_ppm\":400000,\"fail_bound_ppm\":500000,"
      "\"faults\":\"coupler:0:silence:10000\"}");
}

/// Dual-channel silence at certainty: every trial fails, the interval sits
/// far above a 10% bound, and the verdict is VIOLATED.
JobSpec violated_spec() {
  return parse_or_die(
      "{\"kind\":\"campaign\",\"criterion\":\"all_active\",\"steps\":32,"
      "\"seed\":5,\"min_trials\":64,\"max_trials\":4096,\"batch\":64,"
      "\"epsilon_ppm\":400000,\"fail_bound_ppm\":100000,"
      "\"faults\":\"coupler:0:silence:1000000;"
      "coupler:1:silence:1000000\"}");
}

/// Pinned trial count straddling the bound: exhausts max_trials without
/// answering, so the verdict is INCONCLUSIVE and nothing may be cached.
JobSpec inconclusive_spec() {
  return parse_or_die(kPinnedLine);
}

TEST(CampaignExecution, VerdictFollowsTheFailBound) {
  ServiceConfig config;
  const JobResult holds = run_campaign_job(holds_spec(), config, nullptr);
  EXPECT_EQ(holds.verdict, mc::Verdict::kHolds);
  ASSERT_TRUE(holds.has_campaign);
  EXPECT_TRUE(holds.campaign.conclusive);
  EXPECT_LE(holds.campaign.ci_high, 0.5);

  const JobResult violated =
      run_campaign_job(violated_spec(), config, nullptr);
  EXPECT_EQ(violated.verdict, mc::Verdict::kViolated);
  ASSERT_TRUE(violated.has_campaign);
  EXPECT_TRUE(violated.campaign.conclusive);
  EXPECT_GT(violated.campaign.ci_low, 0.1);
  EXPECT_EQ(violated.campaign.failures, violated.campaign.trials);

  const JobResult open =
      run_campaign_job(inconclusive_spec(), config, nullptr);
  EXPECT_EQ(open.verdict, mc::Verdict::kInconclusive);
  ASSERT_TRUE(open.has_campaign);
  EXPECT_FALSE(open.campaign.conclusive);
  EXPECT_EQ(open.campaign.trials, 256u);
}

TEST(CampaignExecution, ResultJsonCarriesTheEstimate) {
  ServiceConfig config;
  const JobSpec spec = inconclusive_spec();
  const JobResult result = run_campaign_job(spec, config, nullptr);
  const std::string json = result_json(spec, result, 1, 1, 0.0);
  EXPECT_NE(json.find("\"campaign\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trials\":256"), std::string::npos) << json;
  EXPECT_NE(json.find("\"conclusive\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"config\":\"campaign/full_shifting/n4/m2\""),
            std::string::npos)
      << json;
}

/// Drains exactly one streamed result from the session.
StreamedResult next_or_die(Session& session) {
  std::optional<StreamedResult> item = session.results().next();
  EXPECT_TRUE(item.has_value());
  return *item;
}

TEST(CampaignExecution, SessionRoundTripWithProgressAndCache) {
  ServiceConfig config;
  config.workers = 1;
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  const JobSpec spec = holds_spec();
  const JobHandle first = session->submit(spec);

  // Poll progress() until the job concludes (the result is not consumed
  // yet, so the record — and its campaign board — is still live). The
  // final snapshot must carry the campaign estimate.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::optional<JobProgress> last;
  while (std::chrono::steady_clock::now() < deadline) {
    last = session->progress(first);
    if (!last || last->state == JobState::kDone) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(last.has_value());
  ASSERT_EQ(last->state, JobState::kDone);
  EXPECT_TRUE(last->has_campaign);
  EXPECT_GT(last->campaign_trials, 0u);
  EXPECT_LE(last->campaign_ci_low, last->campaign_p_hat);
  EXPECT_LE(last->campaign_p_hat, last->campaign_ci_high);

  const StreamedResult computed = next_or_die(*session);
  EXPECT_EQ(computed.result.verdict, mc::Verdict::kHolds);
  ASSERT_TRUE(computed.result.has_campaign);
  EXPECT_FALSE(computed.result.from_cache);
  EXPECT_GT(computed.result.campaign.batches, 0u);

  // The progress board survives until the result is consumed; after a
  // fresh submit of the *cached* job the record reports the estimate too.
  const JobHandle second = session->submit(spec);
  const StreamedResult cached = next_or_die(*session);
  EXPECT_TRUE(cached.result.from_cache);
  EXPECT_EQ(cached.result.campaign.trials, computed.result.campaign.trials);
  EXPECT_EQ(cached.result.campaign.p_hat, computed.result.campaign.p_hat);
  EXPECT_EQ(cached.result.verdict, mc::Verdict::kHolds);
  (void)first;
  (void)second;
}

TEST(CampaignExecution, InconclusiveEstimatesAreNeverCached) {
  ServiceConfig config;
  config.workers = 1;
  AsyncService service(config);
  std::shared_ptr<Session> session = service.open_session();

  const JobSpec spec = inconclusive_spec();
  session->submit(spec);
  const StreamedResult first = next_or_die(*session);
  EXPECT_EQ(first.result.verdict, mc::Verdict::kInconclusive);
  EXPECT_FALSE(first.result.from_cache);

  session->submit(spec);
  const StreamedResult second = next_or_die(*session);
  // Recomputed, not replayed — and bit-identical anyway, because the
  // estimate is a pure function of the spec.
  EXPECT_FALSE(second.result.from_cache);
  EXPECT_EQ(second.result.campaign.failures, first.result.campaign.failures);
  EXPECT_EQ(second.result.campaign.p_hat, first.result.campaign.p_hat);
}

TEST(CampaignExecution, PooledAndSequentialServiceRunsAgree) {
  // The service's thread knob must not perturb the estimate: 1 explicit
  // thread (sequential path) vs 8 (pooled path).
  ServiceConfig config;
  JobSpec spec = inconclusive_spec();
  spec.threads = 1;
  const JobResult sequential = run_campaign_job(spec, config, nullptr);
  spec.threads = 8;
  const JobResult pooled = run_campaign_job(spec, config, nullptr);
  EXPECT_EQ(pooled.campaign.failures, sequential.campaign.failures);
  EXPECT_EQ(pooled.campaign.p_hat, sequential.campaign.p_hat);
  EXPECT_EQ(pooled.campaign.ci_low, sequential.campaign.ci_low);
  EXPECT_EQ(pooled.campaign.ci_high, sequential.campaign.ci_high);
  EXPECT_EQ(pooled.engine_used, EngineChoice::kParallel);
  EXPECT_EQ(sequential.engine_used, EngineChoice::kSerial);
}

}  // namespace
}  // namespace tta::svc
