// Leaky-bucket buffer model: the analytic core behind eq. (1), checked both
// against hand-derived cases and, in a parameterized sweep, against the
// closed-form prediction B = ceil(rho * f).
#include "guardian/leaky_bucket.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tta::guardian {
namespace {

using util::Rational;

TEST(RelativeRateDifference, MatchesEq2) {
  // rho = (w_max - w_min) / w_max, symmetric in argument order.
  Rational fast(1'000'100, 1'000'000);
  Rational slow(999'900, 1'000'000);
  Rational rho = relative_rate_difference(fast, slow);
  EXPECT_EQ(rho, Rational(200, 1'000'100));
  EXPECT_EQ(relative_rate_difference(slow, fast), rho);
  EXPECT_EQ(relative_rate_difference(fast, fast), Rational(0));
}

TEST(LeakyBucket, EqualRatesNeedOneBit) {
  LeakyBucket lb(Rational(1), Rational(1));
  EXPECT_EQ(lb.min_initial_bits(1000), 1);
  EXPECT_FALSE(lb.run(1000, 1).underrun);
  EXPECT_TRUE(lb.run(1000, 0).underrun);
}

TEST(LeakyBucket, FastDrainNeedsProportionalHeadStart) {
  // Drain 25% faster than fill: must buffer ~ f * (D-F)/D = f/5 bits.
  LeakyBucket lb(Rational(4), Rational(5));
  std::int64_t need = lb.min_initial_bits(1000);
  EXPECT_NEAR(static_cast<double>(need), 1000.0 / 5.0, 2.0);
  EXPECT_FALSE(lb.run(1000, need).underrun);
  EXPECT_TRUE(lb.run(1000, need - 1).underrun);
}

TEST(LeakyBucket, SlowDrainAccumulatesPeak) {
  // Drain 20% slower than fill: peak ~ f * (F-D)/F = f/5 bits.
  LeakyBucket lb(Rational(5), Rational(4));
  auto res = lb.run(1000, 1);
  EXPECT_FALSE(res.underrun);
  EXPECT_NEAR(static_cast<double>(res.peak_bits), 200.0, 2.0);
}

TEST(LeakyBucket, WholeFrameBufferedIsAlwaysSafe) {
  LeakyBucket lb(Rational(1), Rational(100));
  auto res = lb.run(500, 500);
  EXPECT_FALSE(res.underrun);
  EXPECT_EQ(res.peak_bits, 500);
  // Oversized thresholds clamp.
  EXPECT_EQ(lb.run(500, 10'000).peak_bits, 500);
}

TEST(LeakyBucket, MinInitialIsExactBoundary) {
  for (auto [fill, drain] :
       {std::pair{Rational(999'900, 1'000'000), Rational(1'000'100, 1'000'000)},
        std::pair{Rational(9), Rational(10)},
        std::pair{Rational(1), Rational(2)}}) {
    LeakyBucket lb(fill, drain);
    for (std::int64_t frame : {100, 2076, 10'000}) {
      std::int64_t need = lb.min_initial_bits(frame);
      EXPECT_FALSE(lb.run(frame, need).underrun);
      if (need > 0) {
        EXPECT_TRUE(lb.run(frame, need - 1).underrun)
            << "fill=" << fill.to_string() << " frame=" << frame;
      }
    }
  }
}

TEST(LeakyBucket, PeakIsAtLeastInitialBuffer) {
  LeakyBucket lb(Rational(10), Rational(11));
  for (std::int64_t init : {0, 5, 50, 99}) {
    EXPECT_GE(lb.run(100, init).peak_bits, std::min<std::int64_t>(init, 100));
  }
}

// Parameterized sweep: the measured minimum buffer must match the eq. (1)
// payload term ceil(rho * f) to within one bit, across clock skews from
// 10 ppm to 10% and frame sizes from the shortest TTP/C frame to the
// paper's 115000-bit example.
struct SweepCase {
  std::int64_t skew_ppm;
  std::int64_t frame_bits;
};

class LeakyBucketSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(LeakyBucketSweep, MeasuredMinBufferMatchesEq1Term) {
  const auto& p = GetParam();
  Rational node(1'000'000 - p.skew_ppm, 1'000'000);
  Rational hub(1'000'000 + p.skew_ppm, 1'000'000);
  Rational rho = relative_rate_difference(node, hub);

  // Fast guardian: the guardian must wait (head start in bits). The exact
  // requirement is rho * f plus one store-and-forward bit (the drain cannot
  // emit a bit it has not fully received), quantized up to whole bits.
  LeakyBucket lb(node, hub);
  std::int64_t measured = lb.min_initial_bits(p.frame_bits);
  double predicted =
      rho.to_double() * static_cast<double>(p.frame_bits) + 1.0;
  EXPECT_NEAR(static_cast<double>(measured), predicted, 1.0)
      << "skew=" << p.skew_ppm << "ppm frame=" << p.frame_bits;

  // Slow guardian: same bound appears as peak occupancy.
  LeakyBucket slow(hub, node);
  auto res = slow.run(p.frame_bits, slow.min_initial_bits(p.frame_bits));
  EXPECT_FALSE(res.underrun);
  EXPECT_NEAR(static_cast<double>(res.peak_bits), predicted, 2.5);
}

INSTANTIATE_TEST_SUITE_P(
    SkewByFrame, LeakyBucketSweep,
    ::testing::Values(SweepCase{10, 2076}, SweepCase{10, 115'000},
                      SweepCase{100, 28}, SweepCase{100, 2076},
                      SweepCase{100, 115'000}, SweepCase{1'000, 2076},
                      SweepCase{1'000, 115'000}, SweepCase{10'000, 76},
                      SweepCase{10'000, 2076}, SweepCase{100'000, 2076},
                      SweepCase{100'000, 28}, SweepCase{50'000, 115'000}));

}  // namespace
}  // namespace tta::guardian
