// Flat vs compact visited-table backends, cross-checked end to end: both
// must produce bit-identical verdicts, exploration statistics, and trace
// lengths on the E1-grid models, including across a flat-written /
// compact-resumed checkpoint handoff. The backends differ only in how a
// slot stores its key (full PackedState vs Cleary quotient), so any
// divergence here is a table bug, not a model property.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "mc/checker.h"
#include "mc/engine.h"
#include "mc/parallel_checker.h"
#include "util/compact_state_table.h"

namespace tta::mc {
namespace {

ModelConfig config(guardian::Authority a, std::uint8_t nodes = 4) {
  ModelConfig cfg;
  cfg.authority = a;
  cfg.protocol.num_nodes = nodes;
  cfg.protocol.num_slots = nodes;
  return cfg;
}

std::string test_path(const std::string& name) {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = std::filesystem::path(testing::TempDir()) /
                              "tta_table_backend" / info->name();
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

using CompactChecker = Checker<TtpcStarModel, util::CompactStateTable>;
using CompactParallel = ParallelChecker<TtpcStarModel,
                                        util::CompactStateTable>;

void expect_identical(const CheckResult& a, const CheckResult& b) {
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.stats.states_explored, b.stats.states_explored);
  EXPECT_EQ(a.stats.transitions, b.stats.transitions);
  EXPECT_EQ(a.stats.max_depth, b.stats.max_depth);
  EXPECT_EQ(a.trace.size(), b.trace.size());
}

TEST(TableBackend, SerialKnownAnswerPinsMatchAcrossBackends) {
  // The E1 passive 4-node pin: exactly 110'956 reachable states, property
  // HOLDS. Both backends must land on the identical fingerprint.
  TtpcStarModel m(config(guardian::Authority::kPassive));
  const auto flat = Checker(m).check(no_integrated_node_freezes());
  const auto compact = CompactChecker(m).check(no_integrated_node_freezes());
  ASSERT_EQ(flat.verdict, Verdict::kHolds);
  ASSERT_EQ(flat.stats.states_explored, 110'956u);
  expect_identical(flat, compact);
}

TEST(TableBackend, ViolatedTraceLengthsMatchAcrossBackendsAndEngines) {
  // full_shifting violates safety; the minimal counterexample length is a
  // graph property and must not depend on the table backend or engine.
  TtpcStarModel m(config(guardian::Authority::kFullShifting));
  const auto flat = Checker(m).check(no_integrated_node_freezes());
  ASSERT_EQ(flat.verdict, Verdict::kViolated);
  ASSERT_FALSE(flat.trace.empty());

  const auto compact = CompactChecker(m).check(no_integrated_node_freezes());
  expect_identical(flat, compact);

  CompactParallel parallel(m, 4);
  const auto par = parallel.check(no_integrated_node_freezes());
  expect_identical(flat, par);
}

TEST(TableBackend, ParallelCompactMatchesSerialFlat) {
  TtpcStarModel m(config(guardian::Authority::kPassive));
  const auto flat = Checker(m).check(no_integrated_node_freezes());
  CompactParallel parallel(m, 4);
  const auto compact = parallel.check(no_integrated_node_freezes());
  expect_identical(flat, compact);
}

TEST(TableBackend, CompactOverflowRetryPathStaysIdentical) {
  // Disable proactive growth so the compact table must saturate mid-level
  // (displacement bound or load ceiling) and take the drop-and-retry path;
  // the result must still be bit-identical, and the retry cost must be
  // visible in hash_recomputes.
  TtpcStarModel m(config(guardian::Authority::kPassive));
  const auto reference = Checker(m).check(no_integrated_node_freezes());

  CompactParallel parallel(m, 2, /*initial_capacity=*/1u << 10);
  parallel.set_growth_headroom(0);
  const auto stressed = parallel.check(no_integrated_node_freezes());
  expect_identical(reference, stressed);
  EXPECT_GT(stressed.stats.hash_recomputes, 0u);
}

TEST(TableBackend, HashRecomputesProveMemoization) {
  TtpcStarModel m(config(guardian::Authority::kPassive));
  // Big enough table that no growth happens (110'956 < max_load(2^18)):
  // the memoized fast path recomputes nothing, on either backend.
  const auto flat_roomy =
      Checker(m, /*initial_capacity=*/1u << 18)
          .check(no_integrated_node_freezes());
  EXPECT_EQ(flat_roomy.stats.hash_recomputes, 0u);
  const auto compact_roomy =
      CompactChecker(m, /*initial_capacity=*/1u << 18)
          .check(no_integrated_node_freezes());
  EXPECT_EQ(compact_roomy.stats.hash_recomputes, 0u);

  // From the default 2^16 capacity the table must grow: the flat backend
  // re-hashes every kept entry per rebuild, the compact backend re-places
  // stored quotients and recomputes nothing.
  const auto flat_grown = Checker(m).check(no_integrated_node_freezes());
  EXPECT_GT(flat_grown.stats.hash_recomputes, 0u);
  const auto compact_grown =
      CompactChecker(m).check(no_integrated_node_freezes());
  EXPECT_EQ(compact_grown.stats.hash_recomputes, 0u);

  // The growth accounting never leaks into the bit-identity fingerprint.
  expect_identical(flat_roomy, flat_grown);
  expect_identical(flat_roomy, compact_grown);
}

TEST(TableBackend, CompactTableReportsSmallerFootprint) {
  TtpcStarModel m(config(guardian::Authority::kPassive));
  const auto flat = Checker(m).check(no_integrated_node_freezes());
  const auto compact = CompactChecker(m).check(no_integrated_node_freezes());
  ASSERT_GT(flat.stats.table_bytes, 0u);
  ASSERT_GT(compact.stats.table_bytes, 0u);
  // The PR's acceptance budget on the E1 pin model: <= 0.5x bytes/state at
  // equal state count (state counts are identical per the pins above).
  EXPECT_LE(compact.stats.table_bytes * 2, flat.stats.table_bytes);
}

TEST(TableBackend, CrossCheckConfirmsNoBackendDivergence) {
  // The redundant-engine gate from the acceptance criteria: a flat serial
  // reference against a compact parallel shadow must merge cleanly, not
  // report kEngineDivergence.
  TtpcStarModel m(config(guardian::Authority::kPassive));
  EngineQuery query;
  query.kind = EngineQuery::Kind::kSafetyCheck;
  query.violation = no_integrated_node_freezes();

  SerialEngine reference;  // flat
  ParallelEngine shadow(4, CheckOptions{TableBackend::kCompact});
  const EngineResult merged = cross_check(
      reference.run(m, query, nullptr, nullptr),
      shadow.run(m, query, nullptr, nullptr));
  EXPECT_EQ(merged.verdict, Verdict::kHolds);
  EXPECT_TRUE(merged.redundant);
  EXPECT_EQ(merged.stats.states_explored, 110'956u);
  EXPECT_EQ(merged.secondary_stats.states_explored, 110'956u);
}

TEST(TableBackend, FlatToCompactCheckpointHandoffIsBitIdentical) {
  // A checkpoint written by the flat serial engine resumes under the
  // compact backend (and the parallel engine) to the uninterrupted
  // reference result: the wavefront format stores full keys, so the
  // handoff is a pure re-insertion.
  TtpcStarModel m(config(guardian::Authority::kPassive));
  const auto baseline = Checker(m).check(no_integrated_node_freezes());
  ASSERT_EQ(baseline.verdict, Verdict::kHolds);

  {
    CheckpointConfig cfg{test_path("flat_to_compact.ckpt"), 0xC0FFEE, 1};
    auto partial = Checker(m).check(no_integrated_node_freezes(),
                                    /*max_states=*/20'000, nullptr, &cfg);
    ASSERT_EQ(partial.verdict, Verdict::kInconclusive);
    ASSERT_TRUE(std::filesystem::exists(cfg.path));

    auto resumed = CompactChecker(m).check(no_integrated_node_freezes(),
                                           /*max_states=*/50'000'000,
                                           nullptr, &cfg);
    EXPECT_TRUE(resumed.stats.resumed);
    expect_identical(baseline, resumed);
  }
  {
    // And the reverse: compact-written, flat-resumed, via the parallel
    // engine for good measure.
    CheckpointConfig cfg{test_path("compact_to_flat.ckpt"), 0xC0FFEE, 1};
    CompactParallel writer(m, 4);
    auto partial = writer.check(no_integrated_node_freezes(),
                                /*max_states=*/20'000, nullptr, &cfg);
    ASSERT_EQ(partial.verdict, Verdict::kInconclusive);

    auto resumed = Checker(m).check(no_integrated_node_freezes(),
                                    /*max_states=*/50'000'000, nullptr,
                                    &cfg);
    EXPECT_TRUE(resumed.stats.resumed);
    expect_identical(baseline, resumed);
  }
}

TEST(TableBackend, BackendNamesAreStable) {
  EXPECT_STREQ(to_string(TableBackend::kFlat), "flat");
  EXPECT_STREQ(to_string(TableBackend::kCompact), "compact");
}

}  // namespace
}  // namespace tta::mc
