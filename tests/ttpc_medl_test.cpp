#include "ttpc/medl.h"

#include <gtest/gtest.h>

namespace tta::ttpc {
namespace {

TEST(Medl, UniformScheduleAssignsOneSlotPerNode) {
  Medl m = Medl::uniform(ProtocolConfig{});
  ASSERT_EQ(m.num_slots(), 4u);
  for (SlotNumber s = 1; s <= 4; ++s) {
    EXPECT_EQ(m.sender_of(s), s);
    EXPECT_EQ(m.slot_of(s), s);
  }
}

TEST(Medl, UniformDefaultsToProtocolIFrame) {
  Medl m = Medl::uniform(ProtocolConfig{});
  EXPECT_EQ(m.slot(1).frame_bits, 76u);
  EXPECT_TRUE(m.slot(1).explicit_cstate);
}

TEST(Medl, MoreSlotsThanNodesCyclesOwnership) {
  ProtocolConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_slots = 6;
  Medl m = Medl::uniform(cfg);
  EXPECT_EQ(m.sender_of(4), 1);
  EXPECT_EQ(m.sender_of(5), 2);
  EXPECT_EQ(m.sender_of(6), 3);
  // slot_of returns the *first* owned slot.
  EXPECT_EQ(m.slot_of(1), 1);
}

TEST(Medl, WithSizesPreservesPerSlotLengths) {
  Medl m = Medl::with_sizes({28, 76, 2076, 76});
  EXPECT_EQ(m.num_slots(), 4u);
  EXPECT_EQ(m.slot(1).frame_bits, 28u);
  EXPECT_EQ(m.slot(3).frame_bits, 2076u);
  EXPECT_EQ(m.min_frame_bits(), 28u);
  EXPECT_EQ(m.max_frame_bits(), 2076u);
}

TEST(Medl, RoundBitsSumsSchedule) {
  Medl m = Medl::with_sizes({28, 76, 2076, 76});
  EXPECT_EQ(m.round_bits(), 28u + 76u + 2076u + 76u);
}

TEST(Medl, UnknownNodeOwnsNoSlot) {
  Medl m = Medl::uniform(ProtocolConfig{});
  EXPECT_EQ(m.slot_of(9), 0);
}

}  // namespace
}  // namespace tta::ttpc
