#include "wire/signal.h"

#include <gtest/gtest.h>

namespace tta::wire {
namespace {

TEST(Signal, NominalSignalAcceptedByDefaultTolerance) {
  EXPECT_TRUE(accepts(ReceiverTolerance{}, nominal_signal()));
}

TEST(Signal, WeakAmplitudeRejected) {
  ReceiverTolerance tol;  // floor 600 mV
  EXPECT_FALSE(accepts(tol, SignalAttrs{599.0, 0.0}));
  EXPECT_TRUE(accepts(tol, SignalAttrs{600.0, 0.0}));
}

TEST(Signal, TimingWindowIsSymmetric) {
  ReceiverTolerance tol;  // window 1000 ns
  EXPECT_TRUE(accepts(tol, SignalAttrs{900.0, 999.0}));
  EXPECT_TRUE(accepts(tol, SignalAttrs{900.0, -999.0}));
  EXPECT_FALSE(accepts(tol, SignalAttrs{900.0, 1001.0}));
  EXPECT_FALSE(accepts(tol, SignalAttrs{900.0, -1001.0}));
}

TEST(Signal, SosRequiresDisagreement) {
  auto tols = spread_tolerances(4, 10.0, 15.0);
  // Clearly good and clearly bad signals are not SOS.
  EXPECT_FALSE(is_sos(tols, nominal_signal()));
  EXPECT_FALSE(is_sos(tols, SignalAttrs{100.0, 0.0}));
  // A signal between the spread thresholds is SOS: node 0 accepts (floor
  // 600), node 3 rejects (floor 630).
  EXPECT_TRUE(is_sos(tols, SignalAttrs{615.0, 0.0}));
}

TEST(Signal, SosInTimeDomain) {
  auto tols = spread_tolerances(4, 10.0, 15.0);
  // Windows are 1000, 985, 970, 955 ns: 960 ns offset splits the cluster.
  EXPECT_TRUE(is_sos(tols, SignalAttrs{900.0, 960.0}));
  EXPECT_FALSE(is_sos(tols, SignalAttrs{900.0, 2000.0}));
}

TEST(Signal, SpreadToleranceShape) {
  auto tols = spread_tolerances(3, 10.0, 15.0);
  ASSERT_EQ(tols.size(), 3u);
  EXPECT_DOUBLE_EQ(tols[0].min_amplitude_mv, 600.0);
  EXPECT_DOUBLE_EQ(tols[1].min_amplitude_mv, 610.0);
  EXPECT_DOUBLE_EQ(tols[2].min_amplitude_mv, 620.0);
  EXPECT_DOUBLE_EQ(tols[0].window_ns, 1000.0);
  EXPECT_DOUBLE_EQ(tols[2].window_ns, 970.0);
}

TEST(Signal, SingleReceiverNeverSos) {
  auto tols = spread_tolerances(1, 10.0, 15.0);
  EXPECT_FALSE(is_sos(tols, SignalAttrs{615.0, 0.0}));
}

}  // namespace
}  // namespace tta::wire
