// End-to-end fault tolerance through the service: retry/backoff concludes
// jobs whose first attempt hit a deadline (with checkpoints preserving
// progress across attempts), redundant dual-engine execution cross-checks
// verdicts, and a service "restart" over the same cache directory serves
// the whole batch from disk.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "mc/engine.h"
#include "svc/service.h"

namespace tta::svc {
namespace {

std::string test_dir(const char* sub) {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = std::filesystem::path(testing::TempDir()) /
                              "tta_ft" / info->name() / sub;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

JobSpec spec_for(guardian::Authority a, Property p, std::uint8_t nodes = 4) {
  JobSpec spec;
  spec.model.authority = a;
  spec.model.protocol.num_nodes = nodes;
  spec.model.protocol.num_slots = nodes;
  spec.property = p;
  return spec;
}

mc::CheckStats stats_with(std::uint64_t states, std::uint64_t transitions) {
  mc::CheckStats s;
  s.states_explored = states;
  s.transitions = transitions;
  s.max_depth = 11;
  s.exhausted = true;
  return s;
}

TEST(CrossCheck, AgreementAdoptsReferenceAndKeepsBothStatBlocks) {
  mc::EngineResult reference, shadow;
  reference.verdict = shadow.verdict = mc::Verdict::kHolds;
  reference.stats = stats_with(100, 900);
  shadow.stats = stats_with(100, 900);
  shadow.stats.seconds = 0.5;
  reference.stats.seconds = 0.9;

  const mc::EngineResult merged = mc::cross_check(reference, shadow);
  EXPECT_EQ(merged.verdict, mc::Verdict::kHolds);
  EXPECT_TRUE(merged.redundant);
  EXPECT_EQ(merged.stats.seconds, 0.9);            // reference primary
  EXPECT_EQ(merged.secondary_stats.seconds, 0.5);  // shadow attached
}

TEST(CrossCheck, DisagreementIsEngineDivergenceWithNoTrace) {
  mc::EngineResult reference, shadow;
  reference.verdict = mc::Verdict::kHolds;
  shadow.verdict = mc::Verdict::kViolated;
  reference.stats = stats_with(100, 900);
  shadow.stats = stats_with(100, 900);
  shadow.trace.resize(3);

  const mc::EngineResult merged = mc::cross_check(reference, shadow);
  EXPECT_EQ(merged.verdict, mc::Verdict::kEngineDivergence);
  EXPECT_TRUE(merged.trace.empty());
  EXPECT_EQ(merged.stats.states_explored, 100u);
  EXPECT_EQ(merged.secondary_stats.states_explored, 100u);
}

TEST(CrossCheck, StatMismatchIsDivergenceEvenWithSameVerdict) {
  // The engines are contractually bit-identical; a one-state delta means
  // one of them dropped or duplicated work, so the answer is not trusted.
  mc::EngineResult reference, shadow;
  reference.verdict = shadow.verdict = mc::Verdict::kHolds;
  reference.stats = stats_with(100, 900);
  shadow.stats = stats_with(101, 900);
  const mc::EngineResult merged = mc::cross_check(reference, shadow);
  EXPECT_EQ(merged.verdict, mc::Verdict::kEngineDivergence);
}

TEST(CrossCheck, OneConclusiveEngineMasksTheOthersStall) {
  mc::EngineResult reference, shadow;
  reference.verdict = mc::Verdict::kInconclusive;  // deadline fired
  reference.stats = stats_with(40, 200);
  reference.stats.cancelled = true;
  reference.stats.exhausted = false;
  shadow.verdict = mc::Verdict::kViolated;
  shadow.stats = stats_with(100, 900);
  shadow.trace.resize(5);

  const mc::EngineResult merged = mc::cross_check(reference, shadow);
  EXPECT_EQ(merged.verdict, mc::Verdict::kViolated);
  EXPECT_EQ(merged.trace.size(), 5u);
  EXPECT_EQ(merged.stats.states_explored, 100u);
  EXPECT_EQ(merged.secondary_stats.states_explored, 40u);
}

TEST(CrossCheck, BothInconclusiveStaysInconclusive) {
  mc::EngineResult reference, shadow;
  reference.stats = stats_with(40, 200);
  shadow.stats = stats_with(90, 500);
  const mc::EngineResult merged = mc::cross_check(reference, shadow);
  EXPECT_EQ(merged.verdict, mc::Verdict::kInconclusive);
  EXPECT_EQ(merged.stats.states_explored, 90u);  // the further attempt
  EXPECT_EQ(merged.secondary_stats.states_explored, 40u);
}

TEST(Redundant, BothEnginesAgreeOnRealQueries) {
  ServiceConfig config;
  config.workers = 2;
  VerificationService service(config);

  JobSpec safety = spec_for(guardian::Authority::kPassive,
                            Property::kNoIntegratedNodeFreezes, 3);
  safety.engine = EngineChoice::kRedundant;
  JobSpec reach = spec_for(guardian::Authority::kTimeWindows,
                           Property::kAllActiveReachable, 3);
  reach.engine = EngineChoice::kRedundant;
  JobSpec recov = spec_for(guardian::Authority::kSmallShifting,
                           Property::kRecoverability, 3);
  recov.engine = EngineChoice::kRedundant;

  const std::vector<JobResult> results =
      service.run_batch({safety, reach, recov});
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.outcome.redundant);
    EXPECT_EQ(r.engine_used, EngineChoice::kRedundant);
    EXPECT_NE(r.verdict, mc::Verdict::kInconclusive);
    EXPECT_NE(r.verdict, mc::Verdict::kEngineDivergence);
    // Agreement implies the secondary explored the identical space.
    EXPECT_EQ(r.outcome.secondary_stats.states_explored, r.stats.states_explored);
    EXPECT_EQ(r.outcome.secondary_stats.transitions, r.stats.transitions);
  }
  EXPECT_EQ(service.metrics().redundant_runs.load(), 3u);
  EXPECT_EQ(service.metrics().engine_divergence.load(), 0u);
}

TEST(Retry, DeadlineJobsConcludeViaEscalationAndCheckpointProgress) {
  // First attempt gets a deadline far too small for the ~110k-state space.
  // With checkpointing, every attempt resumes where the previous one
  // stopped, and with escalation each attempt also gets a longer leash —
  // so the job concludes within the attempt budget, deterministically
  // reaching the exact pinned state count.
  ServiceConfig config;
  config.workers = 1;
  config.checkpoint_dir = test_dir("ckpt");
  // Generous: normal builds conclude in 2-3 attempts, but under TSan with
  // a loaded machine the engine runs ~20x slower and needs the leash the
  // later doublings provide.
  config.retry.max_attempts = 10;
  config.retry.deadline_escalation = 2.0;
  config.retry.backoff.initial_delay_ms = 1;
  config.retry.backoff.max_delay_ms = 8;

  VerificationService service(config);
  JobSpec spec = spec_for(guardian::Authority::kPassive,
                          Property::kNoIntegratedNodeFreezes);
  spec.engine = EngineChoice::kSerial;
  spec.deadline_ms = 120;

  const JobResult result = service.run(spec);
  EXPECT_EQ(result.verdict, mc::Verdict::kHolds);
  EXPECT_EQ(result.stats.states_explored, 110'956u);
  ASSERT_GE(result.outcome.attempts.size(), 2u);
  EXPECT_EQ(result.outcome.attempts.front().verdict, mc::Verdict::kInconclusive);
  EXPECT_TRUE(result.outcome.attempts.front().cancelled);
  EXPECT_EQ(result.outcome.attempts.front().deadline_ms, 120u);
  EXPECT_GT(result.outcome.attempts.back().deadline_ms, 120u);  // escalated
  EXPECT_EQ(result.outcome.attempts.back().verdict, mc::Verdict::kHolds);
  EXPECT_GE(service.metrics().jobs_retried.load(), 1u);
  EXPECT_GE(service.metrics().checkpoint_resumes.load(), 1u);
  // Conclusion removes the checkpoint file.
  EXPECT_TRUE(
      std::filesystem::is_empty(std::filesystem::path(config.checkpoint_dir)));
}

TEST(Retry, BoundedAttemptsGiveUpExplicitly) {
  ServiceConfig config;
  config.workers = 1;
  config.retry.max_attempts = 2;
  config.retry.backoff.initial_delay_ms = 1;

  VerificationService service(config);
  JobSpec spec = spec_for(guardian::Authority::kPassive,
                          Property::kNoIntegratedNodeFreezes);
  spec.engine = EngineChoice::kSerial;
  spec.deadline_ms = 1;  // hopeless without checkpoints

  const JobResult result = service.run(spec);
  EXPECT_EQ(result.verdict, mc::Verdict::kInconclusive);
  EXPECT_EQ(result.outcome.attempts.size(), 2u);  // bounded, then an honest answer
  EXPECT_EQ(service.metrics().jobs_retried.load(), 1u);
}

TEST(Retry, ConclusiveAndCachedJobsNeverRetry) {
  ServiceConfig config;
  config.workers = 2;
  config.retry.max_attempts = 4;
  VerificationService service(config);
  JobSpec spec = spec_for(guardian::Authority::kPassive,
                          Property::kNoIntegratedNodeFreezes, 3);

  const JobResult first = service.run(spec);
  EXPECT_EQ(first.verdict, mc::Verdict::kHolds);
  EXPECT_EQ(first.outcome.attempts.size(), 1u);

  const JobResult second = service.run(spec);
  EXPECT_TRUE(second.from_cache);
  EXPECT_TRUE(second.outcome.attempts.empty());  // a cache hit attempts nothing
  EXPECT_EQ(service.metrics().jobs_retried.load(), 0u);
}

TEST(ServiceRestart, BatchIsServedFromDiskAfterRestart) {
  const std::string cache_dir = test_dir("cache");
  std::vector<JobSpec> jobs;
  jobs.push_back(spec_for(guardian::Authority::kPassive,
                          Property::kNoIntegratedNodeFreezes, 3));
  jobs.push_back(spec_for(guardian::Authority::kTimeWindows,
                          Property::kAllActiveReachable, 3));
  {
    JobSpec violated = spec_for(guardian::Authority::kFullShifting,
                                Property::kNoIntegratedNodeFreezes);
    violated.model.max_out_of_slot_errors = 1;
    jobs.push_back(violated);
  }

  std::vector<JobResult> first;
  {
    ServiceConfig config;
    config.cache_dir = cache_dir;
    config.workers = 2;
    VerificationService service(config);
    first = service.run_batch(jobs);
    for (const JobResult& r : first) {
      ASSERT_NE(r.verdict, mc::Verdict::kInconclusive);
      EXPECT_FALSE(r.from_persistent);
    }
  }  // service destroyed: the "crash-free restart"

  ServiceConfig config;
  config.cache_dir = cache_dir;
  config.workers = 2;
  VerificationService service(config);
  const std::vector<JobResult> second = service.run_batch(jobs);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].from_persistent) << i;
    EXPECT_TRUE(second[i].from_cache) << i;
    EXPECT_EQ(second[i].verdict, first[i].verdict) << i;
    EXPECT_EQ(second[i].stats.states_explored,
              first[i].stats.states_explored)
        << i;
    EXPECT_EQ(second[i].trace.size(), first[i].trace.size()) << i;
  }
  EXPECT_EQ(service.metrics().persistent_hits.load(), jobs.size());
  EXPECT_EQ(service.metrics().persistent_recovered.load(), jobs.size());
  EXPECT_EQ(service.metrics().states_explored.load(), 0u);  // no engine work
}

}  // namespace
}  // namespace tta::svc
