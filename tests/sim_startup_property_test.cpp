// Property sweep: cluster startup must succeed, with all invariants intact,
// for *every* power-on ordering, spacing, topology, and cluster size —
// the protocol's startup is supposed to be insensitive to who wakes first.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/cluster.h"

namespace tta::sim {
namespace {

struct StartupCase {
  unsigned permutation;   // index into the orderings of 4 nodes
  std::uint64_t spacing;  // steps between consecutive power-ons
  Topology topology;
};

std::vector<std::uint64_t> power_on_for(unsigned permutation,
                                        std::uint64_t spacing) {
  std::vector<int> order{0, 1, 2, 3};
  for (unsigned i = 0; i < permutation; ++i) {
    std::next_permutation(order.begin(), order.end());
  }
  std::vector<std::uint64_t> power(4);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    power[order[rank]] = rank * spacing;
  }
  return power;
}

class StartupSweep : public ::testing::TestWithParam<StartupCase> {};

TEST_P(StartupSweep, EveryPowerOnOrderConverges) {
  const StartupCase& p = GetParam();
  ClusterConfig cfg;
  cfg.topology = p.topology;
  cfg.guardian.authority = guardian::Authority::kSmallShifting;
  cfg.power_on_steps = power_on_for(p.permutation, p.spacing);
  cfg.keep_log = false;
  Cluster cluster(cfg, FaultInjector{});

  ASSERT_TRUE(cluster.run_until_all_healthy_active(400))
      << "perm=" << p.permutation << " spacing=" << p.spacing;
  // Let the newest member's first frames circulate (membership bits are set
  // only when a node's own slot passes), then check the invariants.
  cluster.run(2ull * cfg.protocol.num_slots);
  EXPECT_EQ(cluster.healthy_clique_frozen(), 0u);
  EXPECT_EQ(cluster.metrics().masquerade_integrations, 0u);
  EXPECT_EQ(cluster.metrics().replay_integrations, 0u);
  for (ttpc::NodeId id = 1; id <= 4; ++id) {
    EXPECT_EQ(cluster.node(id).membership(), 0b1111) << "node " << int(id);
  }
  // Slot counters phase-locked.
  for (ttpc::NodeId id = 2; id <= 4; ++id) {
    EXPECT_EQ(cluster.node(id).state().slot, cluster.node(1).state().slot);
  }
}

std::vector<StartupCase> all_cases() {
  std::vector<StartupCase> cases;
  for (unsigned perm = 0; perm < 24; ++perm) {
    for (std::uint64_t spacing : {std::uint64_t{0}, std::uint64_t{1},
                                  std::uint64_t{5}}) {
      for (Topology topo : {Topology::kBus, Topology::kStar}) {
        cases.push_back(StartupCase{perm, spacing, topo});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, StartupSweep,
                         ::testing::ValuesIn(all_cases()));

// Cluster-size sweep at the default ordering.
class SizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SizeSweep, StartupScalesWithClusterSize) {
  auto n = static_cast<std::uint8_t>(GetParam());
  ClusterConfig cfg;
  cfg.protocol.num_nodes = n;
  cfg.protocol.num_slots = n;
  cfg.guardian.authority = guardian::Authority::kSmallShifting;
  cfg.keep_log = false;
  Cluster cluster(cfg, FaultInjector{});
  ASSERT_TRUE(cluster.run_until_all_healthy_active(100ull * n));
  // Startup cost grows roughly with the listen timeout (~2 rounds) plus
  // one integration round per node.
  EXPECT_LE(cluster.now(), (std::uint64_t{4} + n) * n);
  cluster.run(2ull * n);  // circulate the newest members' frames
  std::uint16_t full = static_cast<std::uint16_t>((1u << n) - 1);
  EXPECT_EQ(cluster.node(1).membership(), full);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep, ::testing::Range(2, 13));

}  // namespace
}  // namespace tta::sim
