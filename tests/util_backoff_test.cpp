// Known-answer tests for the retry backoff schedule, including the
// degenerate configurations that used to spin: multiplier <= 1.0 made
// delay_ms loop `retry` times multiplying by a factor that never grows,
// and an initial delay of 0 looped the same way while staying 0. Both are
// now answered in O(1) by clamping, and the well-formed schedule is pinned
// exactly (it is part of the service's reproducibility story).
#include <gtest/gtest.h>

#include <chrono>

#include "util/backoff.h"

namespace tta::util {
namespace {

TEST(Backoff, DefaultScheduleIsPinned) {
  const BackoffPolicy policy;  // 10ms, x2, cap 2000ms
  EXPECT_EQ(policy.delay_ms(0), 0u);  // "retry 0" is the first attempt
  EXPECT_EQ(policy.delay_ms(1), 10u);
  EXPECT_EQ(policy.delay_ms(2), 20u);
  EXPECT_EQ(policy.delay_ms(3), 40u);
  EXPECT_EQ(policy.delay_ms(4), 80u);
  EXPECT_EQ(policy.delay_ms(8), 1280u);
  EXPECT_EQ(policy.delay_ms(9), 2000u);   // 2560 saturates at the cap
  EXPECT_EQ(policy.delay_ms(100), 2000u);  // stays saturated
}

TEST(Backoff, MultiplierOneIsAConstantSchedule) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 50;
  policy.multiplier = 1.0;
  EXPECT_EQ(policy.delay_ms(1), 50u);
  EXPECT_EQ(policy.delay_ms(2), 50u);
  EXPECT_EQ(policy.delay_ms(1'000'000'000), 50u);
}

TEST(Backoff, MultiplierBelowOneClampsToConstantInsteadOfShrinking) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 80;
  policy.multiplier = 0.5;  // misconfigured: backoff must never shrink
  EXPECT_EQ(policy.delay_ms(1), 80u);
  EXPECT_EQ(policy.delay_ms(7), 80u);
  EXPECT_EQ(policy.delay_ms(1'000'000'000), 80u);
}

TEST(Backoff, InitialAboveMaxIsCappedAtMax) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 10'000;
  policy.max_delay_ms = 2'000;
  EXPECT_EQ(policy.delay_ms(1), 2000u);
  EXPECT_EQ(policy.delay_ms(5), 2000u);
}

TEST(Backoff, ZeroInitialDelayStaysZero) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 0;
  EXPECT_EQ(policy.delay_ms(1), 0u);
  EXPECT_EQ(policy.delay_ms(64), 0u);  // zero never grows; no spin either
}

TEST(Backoff, HugeRetryCountsAnswerInstantlyEvenWhenDegenerate) {
  // The regression that motivated the fix: delay_ms(2^31) with a
  // non-growing schedule used to iterate two billion times. Bound the
  // whole probe well under a millisecond's worth of wall time.
  BackoffPolicy constant;
  constant.multiplier = 1.0;
  BackoffPolicy shrinking;
  shrinking.multiplier = 0.25;
  const auto start = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < 1000; ++i) {
    EXPECT_EQ(constant.delay_ms(0x8000'0000u + i), 10u);
    EXPECT_EQ(shrinking.delay_ms(0x8000'0000u + i), 10u);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
}

}  // namespace
}  // namespace tta::util
