// The loopback socket layer under tta_verifyd: ephemeral-port listen,
// bounded accept/connect, line framing across packet boundaries, read
// timeouts that keep the connection usable, half-close (EOF) semantics,
// the oversized-line defense, and write-after-peer-close error reporting.
// Labeled `parallel` for the TSan build (client and server threads).
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <thread>

#include "util/fail_point.h"
#include "util/socket.h"

namespace tta::util {
namespace {

using Io = LineConn::Io;

struct Loopback {
  Socket listener;
  std::uint16_t port = 0;

  Loopback() {
    std::string error;
    listener = Socket::listen_on(0, &port, &error);
    EXPECT_TRUE(listener.valid()) << error;
    EXPECT_NE(port, 0u);
  }

  LineConn connect() {
    std::string error;
    Socket sock = Socket::connect_to("127.0.0.1", port, 2000, &error);
    EXPECT_TRUE(sock.valid()) << error;
    return LineConn(std::move(sock));
  }

  LineConn accept() {
    Socket sock = listener.accept_for(2000);
    EXPECT_TRUE(sock.valid());
    return LineConn(std::move(sock));
  }
};

TEST(Socket, EphemeralListenConnectAcceptRoundTrip) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();
  ASSERT_TRUE(client.valid());
  ASSERT_TRUE(server.valid());

  ASSERT_EQ(client.write_line("{\"hello\":1}", 1000), Io::kOk);
  std::string line;
  ASSERT_EQ(server.read_line(&line, 1000), Io::kOk);
  EXPECT_EQ(line, "{\"hello\":1}");

  ASSERT_EQ(server.write_line("{\"ack\":1}", 1000), Io::kOk);
  ASSERT_EQ(client.read_line(&line, 1000), Io::kOk);
  EXPECT_EQ(line, "{\"ack\":1}");
}

TEST(Socket, ManyLinesSurviveArbitraryPacketBoundaries) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  // Write 200 lines from a thread; TCP is free to coalesce or split them.
  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(client.write_line("line-" + std::to_string(i), 2000), Io::kOk);
    }
    client.shutdown_write();
  });
  std::string line;
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(server.read_line(&line, 2000), Io::kOk) << "line " << i;
    EXPECT_EQ(line, "line-" + std::to_string(i));
  }
  EXPECT_EQ(server.read_line(&line, 2000), Io::kEof);  // orderly half-close
  writer.join();
}

TEST(Socket, ReadTimeoutLeavesTheConnectionUsable) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  std::string line;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(server.read_line(&line, 50), Io::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(45));

  ASSERT_EQ(client.write_line("after-timeout", 1000), Io::kOk);
  ASSERT_EQ(server.read_line(&line, 1000), Io::kOk);
  EXPECT_EQ(line, "after-timeout");
}

TEST(Socket, HalfCloseStillDeliversResponses) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  // The client pattern: send every request, shut down the write side,
  // then keep reading responses.
  ASSERT_EQ(client.write_line("req", 1000), Io::kOk);
  client.shutdown_write();

  std::string line;
  ASSERT_EQ(server.read_line(&line, 1000), Io::kOk);
  EXPECT_EQ(line, "req");
  EXPECT_EQ(server.read_line(&line, 1000), Io::kEof);

  ASSERT_EQ(server.write_line("resp", 1000), Io::kOk);
  ASSERT_EQ(client.read_line(&line, 1000), Io::kOk);
  EXPECT_EQ(line, "resp");
}

TEST(Socket, OversizedLineBreaksTheConnectionInsteadOfGrowingForever) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  // One 2 MiB "line": the reader must hit its kMaxLineBytes bound before
  // ever seeing the terminator and break the connection rather than
  // buffer without limit. The writer's result is irrelevant (the reset
  // can land mid-send).
  std::thread flooder([&] {
    const std::string huge(2 * 1024 * 1024, 'z');
    (void)client.write_line(huge, 10'000);
  });
  std::string line;
  EXPECT_EQ(server.read_line(&line, 10'000), Io::kError);
  flooder.join();
}

TEST(Socket, ConnectToNobodyFailsFast) {
  std::string error;
  // Grab an ephemeral port, then close the listener: connecting there is
  // refused (or at worst times out) — either way, an invalid socket.
  std::uint16_t dead_port = 0;
  {
    Socket listener = Socket::listen_on(0, &dead_port, &error);
    ASSERT_TRUE(listener.valid()) << error;
  }
  Socket sock = Socket::connect_to("127.0.0.1", dead_port, 500, &error);
  EXPECT_FALSE(sock.valid());
  EXPECT_FALSE(error.empty());

  Socket bad = Socket::connect_to("not-a-dotted-quad", 1, 500, &error);
  EXPECT_FALSE(bad.valid());
}

TEST(Socket, AcceptTimesOutWithoutAClient) {
  Loopback loop;
  const auto start = std::chrono::steady_clock::now();
  int accept_errno = -1;
  Socket sock = loop.listener.accept_for(50, &accept_errno);
  EXPECT_FALSE(sock.valid());
  EXPECT_EQ(accept_errno, 0);  // timeout, not an error
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(45));
}

/// Fail-point injection into the socket layer. Every test disarms on exit
/// so the suites sharing this process stay clean.
class SocketFaultTest : public testing::Test {
 protected:
  void TearDown() override { FailPoints::instance().disarm_all(); }

  void arm(const char* config) {
    std::string error;
    ASSERT_TRUE(FailPoints::instance().arm(config, &error)) << error;
  }
};

TEST_F(SocketFaultTest, PartialSendsStillDeliverTheWholeLine) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  // Every send is clipped to 3 bytes; write_line must loop until the full
  // line (with terminator) is on the wire, bit-intact.
  arm("sock.send=short-io(3)");
  const std::string payload = "{\"job\":\"0123456789abcdef\"}";
  ASSERT_EQ(client.write_line(payload, 2000), Io::kOk);
  // The clip actually happened: more than one send for a 26-byte line.
  // (Read before disarm_all — disarming a site drops its counters.)
  EXPECT_GT(FailPoints::instance().hits("sock.send"), 1u);
  FailPoints::instance().disarm_all();

  std::string line;
  ASSERT_EQ(server.read_line(&line, 2000), Io::kOk);
  EXPECT_EQ(line, payload);
}

TEST_F(SocketFaultTest, ZeroByteSendsAreBoundedNotSpun) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  // short-io(0): the socket reports writable but accepts nothing, forever.
  // Without the kMaxZeroByteWrites bound this would spin hot against the
  // deadline; with it, write_line gives up with kError well before.
  arm("sock.send=short-io(0)");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(client.write_line("stuck", 10'000), Io::kError);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
  EXPECT_GE(FailPoints::instance().hits("sock.send"),
            static_cast<std::uint64_t>(LineConn::kMaxZeroByteWrites));
}

TEST_F(SocketFaultTest, ZeroByteWindowThenRecovery) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  // A burst of zero-byte sends shorter than the bound must not kill the
  // write — progress resets the counter.
  arm("sock.send=short-io(0):hits(1,8)");
  ASSERT_EQ(client.write_line("eventually", 2000), Io::kOk);
  std::string line;
  ASSERT_EQ(server.read_line(&line, 2000), Io::kOk);
  EXPECT_EQ(line, "eventually");
}

TEST_F(SocketFaultTest, InjectedSendResetIsSticky) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  arm("sock.send=error:hits(1,1)");
  EXPECT_EQ(client.write_line("never-arrives", 2000), Io::kError);
  FailPoints::instance().disarm_all();
  // The injected reset closed the socket: later writes fail without
  // injection, exactly like a real peer reset.
  EXPECT_EQ(client.write_line("still-dead", 2000), Io::kError);
  EXPECT_FALSE(client.valid());
}

TEST_F(SocketFaultTest, ShortRecvReassemblesByteAtATime) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  const std::string payload = "{\"verdict\":\"HOLDS\",\"states\":12345}";
  ASSERT_EQ(client.write_line(payload, 2000), Io::kOk);

  // recv clipped to 1 byte per call: framing must reassemble the line
  // from 30+ single-byte reads without ever faking an EOF.
  arm("sock.recv=short-io(1)");
  std::string line;
  ASSERT_EQ(server.read_line(&line, 5000), Io::kOk);
  EXPECT_EQ(line, payload);
  EXPECT_GE(FailPoints::instance().hits("sock.recv"), payload.size());
}

TEST_F(SocketFaultTest, InjectedRecvResetBreaksTheConnection) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  ASSERT_EQ(client.write_line("in-flight", 2000), Io::kOk);
  arm("sock.recv=error:hits(1,1)");
  std::string line;
  EXPECT_EQ(server.read_line(&line, 2000), Io::kError);
  FailPoints::instance().disarm_all();
  EXPECT_FALSE(server.valid());  // sticky, like a real reset
}

TEST_F(SocketFaultTest, RecvEintrWastesTheCycleButNotTheDeadline) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  // Every poll cycle takes a spurious EINTR before the data is looked at;
  // the deadline still bounds the total wait, and once disarmed the line
  // is delivered intact.
  arm("sock.recv.eintr=error:hits(1,3)");
  ASSERT_EQ(client.write_line("signal-storm", 2000), Io::kOk);
  std::string line;
  ASSERT_EQ(server.read_line(&line, 5000), Io::kOk);
  EXPECT_EQ(line, "signal-storm");
  EXPECT_GE(FailPoints::instance().fired("sock.recv.eintr"), 1u);
}

TEST_F(SocketFaultTest, UnstoppableEintrStormStillHonorsTheDeadline) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  ASSERT_EQ(client.write_line("never-read", 2000), Io::kOk);
  arm("sock.recv.eintr=error");  // every cycle, forever
  std::string line;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(server.read_line(&line, 100), Io::kTimeout);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
}

TEST_F(SocketFaultTest, AcceptFailureLeavesTheConnectionInTheBacklog) {
  Loopback loop;
  std::string error;
  Socket pending = Socket::connect_to("127.0.0.1", loop.port, 2000, &error);
  ASSERT_TRUE(pending.valid()) << error;

  // First accept fails like descriptor exhaustion; the connection stays
  // queued, so the retry (fault window closed) picks it up.
  arm("sock.accept=error:hits(1,1)");
  int accept_errno = 0;
  Socket failed = loop.listener.accept_for(2000, &accept_errno);
  EXPECT_FALSE(failed.valid());
  EXPECT_EQ(accept_errno, EMFILE);

  Socket ok = loop.listener.accept_for(2000, &accept_errno);
  EXPECT_TRUE(ok.valid());
  EXPECT_EQ(accept_errno, 0);
}

}  // namespace
}  // namespace tta::util
