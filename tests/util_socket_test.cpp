// The loopback socket layer under tta_verifyd: ephemeral-port listen,
// bounded accept/connect, line framing across packet boundaries, read
// timeouts that keep the connection usable, half-close (EOF) semantics,
// the oversized-line defense, and write-after-peer-close error reporting.
// Labeled `parallel` for the TSan build (client and server threads).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "util/socket.h"

namespace tta::util {
namespace {

using Io = LineConn::Io;

struct Loopback {
  Socket listener;
  std::uint16_t port = 0;

  Loopback() {
    std::string error;
    listener = Socket::listen_on(0, &port, &error);
    EXPECT_TRUE(listener.valid()) << error;
    EXPECT_NE(port, 0u);
  }

  LineConn connect() {
    std::string error;
    Socket sock = Socket::connect_to("127.0.0.1", port, 2000, &error);
    EXPECT_TRUE(sock.valid()) << error;
    return LineConn(std::move(sock));
  }

  LineConn accept() {
    Socket sock = listener.accept_for(2000);
    EXPECT_TRUE(sock.valid());
    return LineConn(std::move(sock));
  }
};

TEST(Socket, EphemeralListenConnectAcceptRoundTrip) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();
  ASSERT_TRUE(client.valid());
  ASSERT_TRUE(server.valid());

  ASSERT_EQ(client.write_line("{\"hello\":1}", 1000), Io::kOk);
  std::string line;
  ASSERT_EQ(server.read_line(&line, 1000), Io::kOk);
  EXPECT_EQ(line, "{\"hello\":1}");

  ASSERT_EQ(server.write_line("{\"ack\":1}", 1000), Io::kOk);
  ASSERT_EQ(client.read_line(&line, 1000), Io::kOk);
  EXPECT_EQ(line, "{\"ack\":1}");
}

TEST(Socket, ManyLinesSurviveArbitraryPacketBoundaries) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  // Write 200 lines from a thread; TCP is free to coalesce or split them.
  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(client.write_line("line-" + std::to_string(i), 2000), Io::kOk);
    }
    client.shutdown_write();
  });
  std::string line;
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(server.read_line(&line, 2000), Io::kOk) << "line " << i;
    EXPECT_EQ(line, "line-" + std::to_string(i));
  }
  EXPECT_EQ(server.read_line(&line, 2000), Io::kEof);  // orderly half-close
  writer.join();
}

TEST(Socket, ReadTimeoutLeavesTheConnectionUsable) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  std::string line;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(server.read_line(&line, 50), Io::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(45));

  ASSERT_EQ(client.write_line("after-timeout", 1000), Io::kOk);
  ASSERT_EQ(server.read_line(&line, 1000), Io::kOk);
  EXPECT_EQ(line, "after-timeout");
}

TEST(Socket, HalfCloseStillDeliversResponses) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  // The client pattern: send every request, shut down the write side,
  // then keep reading responses.
  ASSERT_EQ(client.write_line("req", 1000), Io::kOk);
  client.shutdown_write();

  std::string line;
  ASSERT_EQ(server.read_line(&line, 1000), Io::kOk);
  EXPECT_EQ(line, "req");
  EXPECT_EQ(server.read_line(&line, 1000), Io::kEof);

  ASSERT_EQ(server.write_line("resp", 1000), Io::kOk);
  ASSERT_EQ(client.read_line(&line, 1000), Io::kOk);
  EXPECT_EQ(line, "resp");
}

TEST(Socket, OversizedLineBreaksTheConnectionInsteadOfGrowingForever) {
  Loopback loop;
  LineConn client = loop.connect();
  LineConn server = loop.accept();

  // One 2 MiB "line": the reader must hit its kMaxLineBytes bound before
  // ever seeing the terminator and break the connection rather than
  // buffer without limit. The writer's result is irrelevant (the reset
  // can land mid-send).
  std::thread flooder([&] {
    const std::string huge(2 * 1024 * 1024, 'z');
    (void)client.write_line(huge, 10'000);
  });
  std::string line;
  EXPECT_EQ(server.read_line(&line, 10'000), Io::kError);
  flooder.join();
}

TEST(Socket, ConnectToNobodyFailsFast) {
  std::string error;
  // Grab an ephemeral port, then close the listener: connecting there is
  // refused (or at worst times out) — either way, an invalid socket.
  std::uint16_t dead_port = 0;
  {
    Socket listener = Socket::listen_on(0, &dead_port, &error);
    ASSERT_TRUE(listener.valid()) << error;
  }
  Socket sock = Socket::connect_to("127.0.0.1", dead_port, 500, &error);
  EXPECT_FALSE(sock.valid());
  EXPECT_FALSE(error.empty());

  Socket bad = Socket::connect_to("not-a-dotted-quad", 1, 500, &error);
  EXPECT_FALSE(bad.valid());
}

TEST(Socket, AcceptTimesOutWithoutAClient) {
  Loopback loop;
  const auto start = std::chrono::steady_clock::now();
  Socket sock = loop.listener.accept_for(50);
  EXPECT_FALSE(sock.valid());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(45));
}

}  // namespace
}  // namespace tta::util
