// Robustness fuzzing of the wire codec: random garbage must never crash the
// decoder and must (virtually) never pass validation; valid frames survive
// round trips from arbitrary field values; burst corruption is caught.
#include <gtest/gtest.h>

#include "util/rng.h"
#include "wire/frame.h"
#include "wire/line_coding.h"

namespace tta::wire {
namespace {

BitStream random_bits(util::Rng& rng, std::size_t n) {
  BitStream bs;
  for (std::size_t i = 0; i < n; ++i) bs.push_bit(rng.next_bool(0.5));
  return bs;
}

TEST(WireFuzz, RandomGarbageNeverDecodesAsValid) {
  util::Rng rng(2024);
  CStateImage receiver{10, 2, 0b0110};
  int accepted = 0;
  for (int iter = 0; iter < 5'000; ++iter) {
    std::size_t len = rng.next_below(200);
    BitStream garbage = random_bits(rng, len);
    DecodeResult res = decode_frame(garbage, 0, receiver);
    if (res.status == DecodeStatus::kOk) ++accepted;
  }
  // The 24-bit CRC gives a ~6e-8 acceptance rate; 5000 trials should see 0.
  EXPECT_EQ(accepted, 0);
}

TEST(WireFuzz, RandomValidFramesRoundTrip) {
  util::Rng rng(7);
  for (int iter = 0; iter < 2'000; ++iter) {
    WireFrame f;
    f.header.mode_change_request = static_cast<std::uint8_t>(rng.next_below(4));
    f.cstate.global_time = static_cast<std::uint16_t>(rng.next_below(65536));
    f.cstate.medl_position = static_cast<std::uint16_t>(rng.next_below(65536));
    f.cstate.membership = static_cast<std::uint16_t>(rng.next_below(65536));
    int channel = static_cast<int>(rng.next_below(2));
    switch (rng.next_below(4)) {
      case 0: {
        f.header.type = WireFrameType::kN;
        std::size_t payload = rng.next_below(17);
        for (std::size_t i = 0; i < payload; ++i) {
          f.payload.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
        }
        DecodeResult res = decode_frame(encode_frame(f, channel), channel,
                                        f.cstate);
        ASSERT_EQ(res.status, DecodeStatus::kOk);
        EXPECT_EQ(res.frame.payload, f.payload);
        break;
      }
      case 1: {
        f.header.type = WireFrameType::kI;
        DecodeResult res = decode_frame(encode_frame(f, channel), channel,
                                        CStateImage{});
        ASSERT_EQ(res.status, DecodeStatus::kOk);
        EXPECT_EQ(res.frame.cstate, f.cstate);
        break;
      }
      case 2: {
        f.header.type = WireFrameType::kX;
        f.payload.resize(240);
        for (auto& b : f.payload) {
          b = static_cast<std::uint8_t>(rng.next_below(256));
        }
        DecodeResult res = decode_frame(encode_frame(f, channel), channel,
                                        CStateImage{});
        ASSERT_EQ(res.status, DecodeStatus::kOk);
        EXPECT_EQ(res.frame.payload, f.payload);
        break;
      }
      default: {
        f.header.type = WireFrameType::kColdStart;
        f.round_slot = static_cast<std::uint16_t>(rng.next_below(512));
        DecodeResult res = decode_frame(encode_frame(f, channel), channel,
                                        CStateImage{});
        ASSERT_EQ(res.status, DecodeStatus::kOk);
        EXPECT_EQ(res.frame.round_slot, f.round_slot);
        break;
      }
    }
  }
}

TEST(WireFuzz, RandomBurstCorruptionIsDetected) {
  util::Rng rng(99);
  WireFrame f;
  f.header.type = WireFrameType::kI;
  f.cstate = CStateImage{100, 3, 0b1010};
  BitStream good = encode_frame(f, 0);
  int undetected = 0;
  for (int iter = 0; iter < 3'000; ++iter) {
    BitStream bad = good;
    unsigned flips = 1 + static_cast<unsigned>(rng.next_below(8));
    for (unsigned i = 0; i < flips; ++i) {
      bad.flip_bit(rng.next_below(bad.size()));
    }
    if (bad == good) continue;  // flips cancelled out
    if (decode_frame(bad, 0, CStateImage{}).status == DecodeStatus::kOk) {
      ++undetected;
    }
  }
  EXPECT_EQ(undetected, 0);
}

TEST(WireFuzz, TruncationsAtEveryLengthAreHandled) {
  WireFrame f;
  f.header.type = WireFrameType::kX;
  f.payload.resize(240, 0x3C);
  BitStream full = encode_frame(f, 1);
  for (std::size_t cut = 0; cut < full.size(); cut += 97) {
    BitStream prefix;
    for (std::size_t i = 0; i < cut; ++i) prefix.push_bit(full.bit(i));
    DecodeResult res = decode_frame(prefix, 1, CStateImage{});
    EXPECT_NE(res.status, DecodeStatus::kOk) << "cut=" << cut;
  }
}

TEST(WireFuzz, LineCodedRoundTripSurvivesArbitraryFrames) {
  util::Rng rng(5);
  LineCoding lc(4);
  for (int iter = 0; iter < 500; ++iter) {
    BitStream frame = random_bits(rng, 1 + rng.next_below(300));
    auto decoded = lc.decode(lc.encode(frame));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, frame);
  }
}

}  // namespace
}  // namespace tta::wire
