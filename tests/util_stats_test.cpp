#include "util/stats.h"

#include <gtest/gtest.h>

namespace tta::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
}

TEST(Accumulator, SingleSampleHasZeroVariance) {
  Accumulator a;
  a.add(3.5);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
  EXPECT_EQ(a.mean(), 3.5);
}

TEST(Accumulator, NumericallyStableForLargeOffsets) {
  // Welford's method must not cancel catastrophically.
  Accumulator a;
  const double base = 1e9;
  for (double x : {base + 1, base + 2, base + 3}) a.add(x);
  EXPECT_NEAR(a.mean(), base + 2, 1e-6);
  EXPECT_NEAR(a.variance(), 1.0, 1e-6);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0, 10);
  for (std::int64_t x : {1, 2, 2, 3, 3, 3, 9}) h.add(x);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.at(2), 2u);
  EXPECT_EQ(h.at(3), 3u);
  EXPECT_EQ(h.at(5), 0u);
  EXPECT_EQ(h.quantile(0.5), 3);
  EXPECT_EQ(h.quantile(1.0), 9);
  EXPECT_EQ(h.quantile(0.01), 1);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0, 4);
  h.add(-10);
  h.add(100);
  h.add(2);
  EXPECT_EQ(h.clamped(), 2u);
  EXPECT_EQ(h.at(0), 1u);
  EXPECT_EQ(h.at(4), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, QuantileOutsideSamplesReturnsEdge) {
  Histogram h(-5, 5);
  h.add(-5);
  EXPECT_EQ(h.quantile(1.0), -5);
}

}  // namespace
}  // namespace tta::util
