// Membership-service invariants at the simulator level. The membership mask
// is the refinement that lets SOS faults propagate (DESIGN.md §3), so its
// consistency properties deserve their own suite.
#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace tta::sim {
namespace {

ClusterConfig base(Topology topo) {
  ClusterConfig cfg;
  cfg.topology = topo;
  cfg.guardian.authority = guardian::Authority::kSmallShifting;
  return cfg;
}

TEST(Membership, ColdStarterBeginsWithItself) {
  Cluster c(base(Topology::kStar), FaultInjector{});
  // Node 1 times out first and cold-starts; catch it in that phase.
  c.run(9);
  ASSERT_EQ(c.node(1).state().state, ttpc::CtrlState::kColdStart);
  EXPECT_EQ(c.node(1).membership(), 0b0001);
}

TEST(Membership, IntegratorAdoptsSenderImage) {
  Cluster c(base(Topology::kStar), FaultInjector{});
  c.run(17);  // nodes 2..4 have integrated on node 1's cold start by now
  for (ttpc::NodeId id = 2; id <= 4; ++id) {
    if (c.node(id).state().state == ttpc::CtrlState::kPassive) {
      EXPECT_EQ(c.node(id).membership(), 0b0001) << "node " << int(id);
    }
  }
}

TEST(Membership, GrowsAsNodesStartSending) {
  Cluster c(base(Topology::kStar), FaultInjector{});
  c.run(40);
  EXPECT_EQ(c.node(1).membership(), 0b1111);
}

TEST(Membership, SendersCountThemselvesViaOwnFrames) {
  Cluster c(base(Topology::kStar), FaultInjector{});
  c.run(60);
  for (ttpc::NodeId id = 1; id <= 4; ++id) {
    EXPECT_TRUE((c.node(id).membership() >> (id - 1)) & 1u)
        << "node " << int(id) << " not in its own membership";
  }
}

TEST(Membership, SilentNodeIsDroppedEverywhereConsistently) {
  FaultInjector fi;
  fi.add(NodeFaultWindow{3, NodeFaultMode::kSilent, 100, UINT64_MAX});
  Cluster c(base(Topology::kStar), std::move(fi));
  c.run(300);
  for (ttpc::NodeId id : {ttpc::NodeId{1}, ttpc::NodeId{2}, ttpc::NodeId{4}}) {
    EXPECT_FALSE((c.node(id).membership() >> 2) & 1u) << "node " << int(id);
    EXPECT_EQ(c.node(id).state().state, ttpc::CtrlState::kActive);
  }
}

TEST(Membership, RecoveredNodeRejoinsMembership) {
  FaultInjector fi;
  fi.add(NodeFaultWindow{3, NodeFaultMode::kSilent, 100, 200});
  Cluster c(base(Topology::kStar), std::move(fi));
  c.run(500);
  for (ttpc::NodeId id = 1; id <= 4; ++id) {
    EXPECT_TRUE((c.node(id).membership() >> 2) & 1u) << "node " << int(id);
  }
  EXPECT_EQ(c.count_in_state(ttpc::CtrlState::kActive), 4u);
}

TEST(Membership, HealthyRunKeepsAllViewsIdentical) {
  // The membership service's core guarantee: every step, all integrated
  // nodes hold the same mask.
  Cluster c(base(Topology::kBus), FaultInjector{});
  for (int step = 0; step < 200; ++step) {
    c.step();
    std::uint16_t reference = 0;
    bool have_reference = false;
    for (ttpc::NodeId id = 1; id <= 4; ++id) {
      if (!ttpc::is_integrated(c.node(id).state().state)) continue;
      if (!have_reference) {
        reference = c.node(id).membership();
        have_reference = true;
      } else {
        ASSERT_EQ(c.node(id).membership(), reference)
            << "diverged at step " << step << " for node " << int(id);
      }
    }
  }
}

TEST(Membership, SosSplitsTheViews) {
  // The divergence mechanism itself: under an SOS-value fault, acceptors
  // and rejecters must end up with different masks at some step.
  FaultInjector fi;
  fi.add(NodeFaultWindow{1, NodeFaultMode::kSosValue, 0, UINT64_MAX});
  ClusterConfig cfg = base(Topology::kBus);
  cfg.guardian.authority = guardian::Authority::kPassive;
  Cluster c(cfg, std::move(fi));
  bool diverged = false;
  for (int step = 0; step < 400 && !diverged; ++step) {
    c.step();
    std::uint16_t first = 0;
    bool have = false;
    for (ttpc::NodeId id = 2; id <= 4; ++id) {
      if (!ttpc::is_integrated(c.node(id).state().state)) continue;
      if (!have) {
        first = c.node(id).membership();
        have = true;
      } else if (c.node(id).membership() != first) {
        diverged = true;
      }
    }
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace tta::sim
