// The history-augmented model: reproduces the paper's exact trace-1 causal
// shape (victim integrates ON the replayed frame, then freezes).
#include "mc/monitor.h"

#include <gtest/gtest.h>

#include "mc/trace_printer.h"

namespace tta::mc {
namespace {

ModelConfig paper_trace1_config() {
  ModelConfig cfg;
  cfg.authority = guardian::Authority::kFullShifting;
  cfg.max_out_of_slot_errors = 1;
  return cfg;
}

TEST(MonitoredModel, PackUnpackRoundTripsMonitorBits) {
  MonitoredModel model(paper_trace1_config());
  MonitoredState s = model.initial();
  s.base.nodes[1].state = ttpc::CtrlState::kPassive;
  s.base.nodes[1].slot = 2;
  s.integrated_on_replay = 0b0010;
  EXPECT_EQ(model.unpack(model.pack(s)), s);
  s.integrated_on_replay = 0b1111;
  EXPECT_EQ(model.unpack(model.pack(s)), s);
}

TEST(MonitoredModel, MonitorBitsDistinguishStates) {
  MonitoredModel model(paper_trace1_config());
  MonitoredState a = model.initial();
  MonitoredState b = a;
  b.integrated_on_replay = 1;
  EXPECT_NE(model.pack(a), model.pack(b));
}

TEST(MonitoredModel, SuccessorsMirrorInnerModel) {
  MonitoredModel model(paper_trace1_config());
  TtpcStarModel inner(paper_trace1_config());
  auto mon_succs = model.successors(model.initial());
  auto inner_succs = inner.successors(inner.initial());
  ASSERT_EQ(mon_succs.size(), inner_succs.size());
  for (std::size_t i = 0; i < mon_succs.size(); ++i) {
    EXPECT_EQ(mon_succs[i].next.base, inner_succs[i].next);
    EXPECT_EQ(mon_succs[i].choice_code, inner_succs[i].choice_code);
  }
}

TEST(MonitoredModel, PaperTraceOneShapeIsReachable) {
  // "Node B integrates on [the replayed cold start frame] ... Node B
  // freezes due to a clique avoidance error." — a violation where the
  // frozen node's integration came from the replay.
  MonitoredModel model(paper_trace1_config());
  Checker checker(model);
  auto res = checker.check(replay_victim_freezes());
  ASSERT_FALSE(res.holds());
  ASSERT_FALSE(res.trace.empty());

  // The victim both integrated via a replayed frame and froze.
  const auto& last = res.trace.back();
  int victim = -1;
  for (std::size_t i = 0; i < model.num_nodes(); ++i) {
    if (((last.before.integrated_on_replay >> i) & 1u) &&
        last.after.base.nodes[i].state == ttpc::CtrlState::kFreeze) {
      victim = static_cast<int>(i);
    }
  }
  ASSERT_GE(victim, 0);

  // Somewhere in the trace that victim integrated during a replay step.
  bool integrated_on_replay_step = false;
  for (const auto& step : res.trace) {
    bool replay = step.label.fault0 == guardian::CouplerFault::kOutOfSlot ||
                  step.label.fault1 == guardian::CouplerFault::kOutOfSlot;
    auto ev = step.label.events[static_cast<std::size_t>(victim)];
    if (replay && (ev == ttpc::StepEvent::kIntegratedOnColdStart ||
                   ev == ttpc::StepEvent::kIntegratedOnCState)) {
      integrated_on_replay_step = true;
    }
  }
  EXPECT_TRUE(integrated_on_replay_step);
}

TEST(MonitoredModel, ReplayVictimTraceIsLongerThanPlainShortest) {
  // The plain property's shortest violation (observer freezes) is shorter
  // than the specific integrated-on-replay shape the paper narrates.
  TtpcStarModel plain(paper_trace1_config());
  auto plain_res = Checker(plain).check(no_integrated_node_freezes());
  MonitoredModel monitored(paper_trace1_config());
  auto mon_res = Checker(monitored).check(replay_victim_freezes());
  ASSERT_FALSE(plain_res.holds());
  ASSERT_FALSE(mon_res.holds());
  EXPECT_GE(mon_res.trace.size(), plain_res.trace.size());
}

TEST(MonitoredModel, NoReplayVictimsWithoutBufferingAuthority) {
  ModelConfig cfg;
  cfg.authority = guardian::Authority::kSmallShifting;
  MonitoredModel model(cfg);
  auto res = Checker(model).check(replay_victim_freezes());
  EXPECT_TRUE(res.holds());
  EXPECT_TRUE(res.stats.exhausted);
}

TEST(MonitoredModel, StripMonitorPreservesLabelsForNarration) {
  MonitoredModel model(paper_trace1_config());
  auto res = Checker(model).check(replay_victim_freezes());
  ASSERT_FALSE(res.holds());
  std::vector<TraceStep> base_trace = strip_monitor(res.trace);
  ASSERT_EQ(base_trace.size(), res.trace.size());
  TracePrinter printer(model.inner());
  std::string story = printer.narrate(base_trace);
  EXPECT_NE(story.find("replays the buffered"), std::string::npos);
  EXPECT_NE(story.find("integrated on"), std::string::npos);
  EXPECT_NE(story.find("FROZE"), std::string::npos);
}

TEST(MonitoredModel, CStateVariantAlsoHasReplayVictims) {
  ModelConfig cfg = paper_trace1_config();
  cfg.allow_coldstart_duplication = false;
  MonitoredModel model(cfg);
  auto res = Checker(model).check(replay_victim_freezes());
  EXPECT_FALSE(res.holds());
}

}  // namespace
}  // namespace tta::mc
