#include "sim/cluster.h"

#include <gtest/gtest.h>

namespace tta::sim {
namespace {

ClusterConfig star(guardian::Authority a) {
  ClusterConfig cfg;
  cfg.topology = Topology::kStar;
  cfg.guardian.authority = a;
  return cfg;
}

ClusterConfig bus() {
  ClusterConfig cfg;
  cfg.topology = Topology::kBus;
  return cfg;
}

// Startup must succeed in every fault-free configuration — parameterized
// over topology x authority.
struct StartupCase {
  Topology topology;
  guardian::Authority authority;
};

class StartupTest : public ::testing::TestWithParam<StartupCase> {};

TEST_P(StartupTest, FaultFreeClusterReachesAllActive) {
  ClusterConfig cfg;
  cfg.topology = GetParam().topology;
  cfg.guardian.authority = GetParam().authority;
  Cluster cluster(cfg, FaultInjector{});
  EXPECT_TRUE(cluster.run_until_all_healthy_active(200));
  EXPECT_EQ(cluster.count_in_state(ttpc::CtrlState::kActive), 4u);
  EXPECT_EQ(cluster.healthy_clique_frozen(), 0u);
  EXPECT_EQ(cluster.metrics().masquerade_integrations, 0u);
  EXPECT_EQ(cluster.metrics().sos_disagreements, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, StartupTest,
    ::testing::Values(
        StartupCase{Topology::kBus, guardian::Authority::kPassive},
        StartupCase{Topology::kStar, guardian::Authority::kPassive},
        StartupCase{Topology::kStar, guardian::Authority::kTimeWindows},
        StartupCase{Topology::kStar, guardian::Authority::kSmallShifting},
        StartupCase{Topology::kStar, guardian::Authority::kFullShifting}));

TEST(Cluster, StartupIsDeterministic) {
  Cluster a(star(guardian::Authority::kSmallShifting), FaultInjector{});
  Cluster b(star(guardian::Authority::kSmallShifting), FaultInjector{});
  a.run(100);
  b.run(100);
  for (ttpc::NodeId id = 1; id <= 4; ++id) {
    EXPECT_EQ(a.node(id).state(), b.node(id).state());
    EXPECT_EQ(a.node(id).membership(), b.node(id).membership());
  }
}

TEST(Cluster, StartupTimeBoundedByAFewRounds) {
  Cluster cluster(star(guardian::Authority::kSmallShifting), FaultInjector{});
  ASSERT_TRUE(cluster.run_until_all_healthy_active(200));
  // Listen timeouts are ~2 rounds; integration takes ~3 more rounds.
  EXPECT_LE(cluster.now(), 8u * 4u);
}

TEST(Cluster, MembershipConvergesToFullSet) {
  Cluster cluster(star(guardian::Authority::kSmallShifting), FaultInjector{});
  cluster.run(80);
  for (ttpc::NodeId id = 1; id <= 4; ++id) {
    EXPECT_EQ(cluster.node(id).membership(), 0b1111)
        << "node " << int(id);
  }
}

TEST(Cluster, MembershipViewsAgreeAmongActiveNodes) {
  Cluster cluster(bus(), FaultInjector{});
  cluster.run(200);
  std::uint16_t reference = cluster.node(1).membership();
  for (ttpc::NodeId id = 2; id <= 4; ++id) {
    EXPECT_EQ(cluster.node(id).membership(), reference);
  }
}

TEST(Cluster, SlotCountersStayPhaseLocked) {
  Cluster cluster(star(guardian::Authority::kPassive), FaultInjector{});
  cluster.run(100);
  // All integrated nodes share the same slot counter value each step.
  ttpc::SlotNumber slot = cluster.node(1).state().slot;
  for (ttpc::NodeId id = 2; id <= 4; ++id) {
    EXPECT_EQ(cluster.node(id).state().slot, slot);
  }
}

TEST(Cluster, EveryRoundCarriesFourFrames) {
  ClusterConfig cfg = star(guardian::Authority::kSmallShifting);
  Cluster cluster(cfg, FaultInjector{});
  ASSERT_TRUE(cluster.run_until_all_healthy_active(200));
  std::uint64_t mark = cluster.now();
  cluster.run(8);
  // In steady state, each of the last 8 slots carries a C-state frame.
  const auto& recs = cluster.log().records();
  std::size_t with_frames = 0;
  for (const auto& r : recs) {
    if (r.step < mark) continue;
    if (r.channel0.kind == ttpc::FrameKind::kCState) ++with_frames;
  }
  EXPECT_EQ(with_frames, 8u);
}

TEST(Cluster, ChannelsCarryIdenticalContentWhenHealthy) {
  Cluster cluster(star(guardian::Authority::kTimeWindows), FaultInjector{});
  cluster.run(60);
  for (const auto& r : cluster.log().records()) {
    EXPECT_EQ(r.channel0, r.channel1) << "step " << r.step;
  }
}

TEST(Cluster, LogRenderingMentionsStatesAndFrames) {
  Cluster cluster(star(guardian::Authority::kPassive), FaultInjector{});
  cluster.run(30);
  std::string log = cluster.log().render();
  EXPECT_NE(log.find("cold_start"), std::string::npos);
  EXPECT_NE(log.find("listen"), std::string::npos);
  EXPECT_NE(log.find("sent"), std::string::npos);
}

TEST(Cluster, KeepLogOffKeepsLogEmpty) {
  ClusterConfig cfg = star(guardian::Authority::kPassive);
  cfg.keep_log = false;
  Cluster cluster(cfg, FaultInjector{});
  cluster.run(50);
  EXPECT_TRUE(cluster.log().empty());
}

TEST(Cluster, SimultaneousPowerOnStillStartsUp) {
  ClusterConfig cfg = star(guardian::Authority::kSmallShifting);
  cfg.power_on_steps = {0, 0, 0, 0};
  Cluster cluster(cfg, FaultInjector{});
  EXPECT_TRUE(cluster.run_until_all_healthy_active(200));
}

TEST(Cluster, LatePowerOnIntegratesIntoRunningCluster) {
  ClusterConfig cfg = star(guardian::Authority::kSmallShifting);
  cfg.power_on_steps = {0, 1, 2, 150};
  Cluster cluster(cfg, FaultInjector{});
  cluster.run(140);
  EXPECT_EQ(cluster.node(4).state().state, ttpc::CtrlState::kFreeze);
  EXPECT_EQ(cluster.count_in_state(ttpc::CtrlState::kActive), 3u);
  cluster.run(160);
  EXPECT_EQ(cluster.node(4).state().state, ttpc::CtrlState::kActive);
  EXPECT_TRUE(cluster.node(4).ever_integrated());
}

TEST(Cluster, SixNodeClusterStartsUp) {
  ClusterConfig cfg = star(guardian::Authority::kSmallShifting);
  cfg.protocol.num_nodes = 6;
  cfg.protocol.num_slots = 6;
  Cluster cluster(cfg, FaultInjector{});
  EXPECT_TRUE(cluster.run_until_all_healthy_active(400));
  EXPECT_EQ(cluster.count_in_state(ttpc::CtrlState::kActive), 6u);
}

TEST(Cluster, MetricsStepsTrackRun) {
  Cluster cluster(bus(), FaultInjector{});
  cluster.run(123);
  EXPECT_EQ(cluster.metrics().steps, 123u);
  EXPECT_EQ(cluster.now(), 123u);
}

}  // namespace
}  // namespace tta::sim
