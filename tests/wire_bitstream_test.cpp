#include "wire/bitstream.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tta::wire {
namespace {

TEST(BitStream, PushAndReadSingleBits) {
  BitStream bs;
  bs.push_bit(true);
  bs.push_bit(false);
  bs.push_bit(true);
  ASSERT_EQ(bs.size(), 3u);
  EXPECT_TRUE(bs.bit(0));
  EXPECT_FALSE(bs.bit(1));
  EXPECT_TRUE(bs.bit(2));
}

TEST(BitStream, PushBitsIsMsbFirst) {
  BitStream bs;
  bs.push_bits(0b1011, 4);
  EXPECT_EQ(bs.to_string(), "1011");
  EXPECT_EQ(bs.read_bits(0, 4), 0b1011u);
}

TEST(BitStream, ReadBitsAtArbitraryOffsets) {
  BitStream bs;
  bs.push_bits(0xA5, 8);
  bs.push_bits(0x3C, 8);
  EXPECT_EQ(bs.read_bits(4, 8), 0x53u);  // spans the byte boundary
  EXPECT_EQ(bs.read_bits(8, 8), 0x3Cu);
}

TEST(BitStream, OddLengthsAreExact) {
  // TTP/C frames are 28/53/2076 bits — never byte-aligned.
  BitStream bs;
  bs.push_bits(0x1FFFFFF, 25);
  EXPECT_EQ(bs.size(), 25u);
  EXPECT_EQ(bs.read_bits(0, 25), 0x1FFFFFFu);
}

TEST(BitStream, AppendConcatenates) {
  BitStream a, b;
  a.push_bits(0b101, 3);
  b.push_bits(0b0110, 4);
  a.append(b);
  EXPECT_EQ(a.to_string(), "1010110");
}

TEST(BitStream, FlipBitTogglesExactlyOne) {
  BitStream bs;
  bs.push_bits(0, 16);
  bs.flip_bit(9);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(bs.bit(i), i == 9);
  }
  bs.flip_bit(9);
  EXPECT_EQ(bs.read_bits(0, 16), 0u);
}

TEST(BitStream, EqualityIncludesLength) {
  BitStream a, b;
  a.push_bits(0, 8);
  b.push_bits(0, 9);
  EXPECT_FALSE(a == b);
  BitStream c;
  c.push_bits(0, 8);
  EXPECT_TRUE(a == c);
}

TEST(BitStream, ClearResets) {
  BitStream bs;
  bs.push_bits(0xFF, 8);
  bs.clear();
  EXPECT_TRUE(bs.empty());
  bs.push_bit(true);
  EXPECT_EQ(bs.to_string(), "1");
}

TEST(BitStream, RandomizedPushReadRoundTrip) {
  util::Rng rng(99);
  for (int iter = 0; iter < 100; ++iter) {
    BitStream bs;
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    for (int f = 0; f < 20; ++f) {
      unsigned bits = 1 + static_cast<unsigned>(rng.next_below(33));
      std::uint64_t v = rng.next_u64() & ((bits == 64) ? ~0ull : ((1ull << bits) - 1));
      fields.emplace_back(v, bits);
      bs.push_bits(v, bits);
    }
    std::size_t pos = 0;
    for (const auto& [v, bits] : fields) {
      EXPECT_EQ(bs.read_bits(pos, bits), v);
      pos += bits;
    }
  }
}

}  // namespace
}  // namespace tta::wire
