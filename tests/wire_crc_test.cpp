#include "wire/crc.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tta::wire {
namespace {

BitStream ascii_bits(const char* s) {
  BitStream bs;
  for (const char* p = s; *p; ++p) {
    bs.push_bits(static_cast<std::uint8_t>(*p), 8);
  }
  return bs;
}

TEST(Crc, Crc16CcittKnownVector) {
  // The canonical check value: CRC-16/CCITT-FALSE("123456789") = 0x29B1.
  EXPECT_EQ(Crc::compute(crc16_ccitt(), ascii_bits("123456789")), 0x29B1u);
}

TEST(Crc, Crc8AutosarKnownWidth) {
  std::uint32_t v = Crc::compute(crc8_autosar(), ascii_bits("123456789"));
  EXPECT_LE(v, 0xFFu);
  // Deterministic: same input, same value.
  EXPECT_EQ(Crc::compute(crc8_autosar(), ascii_bits("123456789")), v);
}

TEST(Crc, DetectsEverySingleBitFlip) {
  BitStream msg = ascii_bits("time-triggered");
  std::uint32_t good = Crc::compute(crc24_channel(0), msg);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg.flip_bit(i);
    EXPECT_NE(Crc::compute(crc24_channel(0), msg), good) << "bit " << i;
    msg.flip_bit(i);
  }
}

TEST(Crc, DetectsBurstErrorsUpToWidth) {
  // A CRC of width w detects all burst errors of length <= w.
  util::Rng rng(5);
  BitStream msg = ascii_bits("burst-error-coverage");
  std::uint32_t good = Crc::compute(crc24_channel(0), msg);
  for (int trial = 0; trial < 200; ++trial) {
    BitStream corrupted = msg;
    unsigned burst = 2 + static_cast<unsigned>(rng.next_below(23));
    std::size_t start = rng.next_below(msg.size() - burst);
    corrupted.flip_bit(start);                // burst endpoints flipped,
    corrupted.flip_bit(start + burst - 1);    // interior randomized
    for (unsigned i = 1; i + 1 < burst; ++i) {
      if (rng.next_bool(0.5)) corrupted.flip_bit(start + i);
    }
    EXPECT_NE(Crc::compute(crc24_channel(0), corrupted), good);
  }
}

TEST(Crc, ChannelsUseDistinctSchedules) {
  BitStream msg = ascii_bits("same frame, two channels");
  EXPECT_NE(Crc::compute(crc24_channel(0), msg),
            Crc::compute(crc24_channel(1), msg));
}

TEST(Crc, SeedChangesValue) {
  // This is the implicit C-state mechanism: a different seed (C-state image)
  // must yield a different CRC over identical frame bits.
  BitStream msg = ascii_bits("n-frame body");
  std::uint32_t s0 = Crc::compute(crc24_channel(0), msg, 0);
  std::uint32_t s1 = Crc::compute(crc24_channel(0), msg, 0x000001);
  std::uint32_t s2 = Crc::compute(crc24_channel(0), msg, 0x800000);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, s2);
  EXPECT_NE(s1, s2);
}

TEST(Crc, IncrementalMatchesOneShot) {
  BitStream msg = ascii_bits("incremental");
  Crc c(crc24_channel(1));
  c.push(msg, 0, 40);
  c.push(msg, 40, msg.size() - 40);
  EXPECT_EQ(c.value(), Crc::compute(crc24_channel(1), msg));
}

TEST(Crc, ResetRestoresInitialState) {
  Crc c(crc16_ccitt());
  c.push(ascii_bits("garbage"));
  c.reset();
  c.push(ascii_bits("123456789"));
  EXPECT_EQ(c.value(), 0x29B1u);
}

TEST(Crc, EmptyMessageYieldsInitDerivedValue) {
  Crc c(crc16_ccitt());
  EXPECT_EQ(c.value(), 0xFFFFu);  // init ^ xorout, nothing clocked
}

}  // namespace
}  // namespace tta::wire
