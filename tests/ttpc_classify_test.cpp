// Parameterized coverage of the frame-status classifier and the two-channel
// fusion rule — every (channel0, channel1) combination of the abstract
// alphabet, under both fusion policies.
#include <gtest/gtest.h>

#include "ttpc/controller.h"

namespace tta::ttpc {
namespace {

struct Case {
  ChannelFrame ch0;
  ChannelFrame ch1;
  SlotNumber slot;
  SlotVerdict optimistic;   // TTP/C rule (correct dominates)
  SlotVerdict pessimistic;  // ablation (incorrect dominates)
};

class ClassifyTest : public ::testing::TestWithParam<Case> {};

TEST_P(ClassifyTest, OptimisticFusion) {
  ProtocolConfig cfg;
  const Case& c = GetParam();
  EXPECT_EQ(classify_view(ChannelView{c.ch0, c.ch1}, c.slot, cfg),
            c.optimistic);
}

TEST_P(ClassifyTest, PessimisticFusionAblation) {
  ProtocolConfig cfg;
  cfg.bad_dominates_fusion = true;
  const Case& c = GetParam();
  EXPECT_EQ(classify_view(ChannelView{c.ch0, c.ch1}, c.slot, cfg),
            c.pessimistic);
}

constexpr ChannelFrame kSilence{};
constexpr ChannelFrame kNoise{FrameKind::kBad, 0};
constexpr ChannelFrame kGoodCState{FrameKind::kCState, 2};
constexpr ChannelFrame kWrongCState{FrameKind::kCState, 3};
constexpr ChannelFrame kGoodCold{FrameKind::kColdStart, 2};
constexpr ChannelFrame kWrongCold{FrameKind::kColdStart, 4};
constexpr ChannelFrame kGoodOther{FrameKind::kOther, 2};
constexpr ChannelFrame kWrongOther{FrameKind::kOther, 1};

INSTANTIATE_TEST_SUITE_P(
    AllFusions, ClassifyTest,
    ::testing::Values(
        // Total silence is null.
        Case{kSilence, kSilence, 2, SlotVerdict::kNull, SlotVerdict::kNull},
        // Noise is *invalid*, not incorrect: feeds neither counter.
        Case{kNoise, kSilence, 2, SlotVerdict::kNull, SlotVerdict::kNull},
        Case{kNoise, kNoise, 2, SlotVerdict::kNull, SlotVerdict::kNull},
        // A correct frame on either channel makes the slot agreed.
        Case{kGoodCState, kSilence, 2, SlotVerdict::kAgreed,
             SlotVerdict::kAgreed},
        Case{kSilence, kGoodCState, 2, SlotVerdict::kAgreed,
             SlotVerdict::kAgreed},
        Case{kGoodCold, kSilence, 2, SlotVerdict::kAgreed,
             SlotVerdict::kAgreed},
        Case{kGoodOther, kSilence, 2, SlotVerdict::kAgreed,
             SlotVerdict::kAgreed},
        // Valid-but-wrong-id frames are incorrect -> failed.
        Case{kWrongCState, kSilence, 2, SlotVerdict::kFailed,
             SlotVerdict::kFailed},
        Case{kWrongCold, kSilence, 2, SlotVerdict::kFailed,
             SlotVerdict::kFailed},
        Case{kWrongOther, kSilence, 2, SlotVerdict::kFailed,
             SlotVerdict::kFailed},
        // Split verdicts: this is where the fusion policies differ. TTP/C's
        // optimistic rule saves the slot when one channel is correct.
        Case{kGoodCState, kWrongCState, 2, SlotVerdict::kAgreed,
             SlotVerdict::kFailed},
        Case{kWrongCState, kGoodCState, 2, SlotVerdict::kAgreed,
             SlotVerdict::kFailed},
        Case{kGoodCState, kNoise, 2, SlotVerdict::kAgreed,
             SlotVerdict::kAgreed},
        Case{kWrongCState, kNoise, 2, SlotVerdict::kFailed,
             SlotVerdict::kFailed},
        // Both wrong: failed either way.
        Case{kWrongCState, kWrongCold, 2, SlotVerdict::kFailed,
             SlotVerdict::kFailed}));

TEST(Classify, IdZeroNeverMatchesAnySlot) {
  // Frames demoted to id 0 (membership mismatch at the sim layer) must be
  // incorrect for every receiver slot.
  ProtocolConfig cfg;
  for (SlotNumber slot = 1; slot <= 4; ++slot) {
    ChannelView v{ChannelFrame{FrameKind::kCState, 0}, ChannelFrame{}};
    EXPECT_EQ(classify_view(v, slot, cfg), SlotVerdict::kFailed);
  }
}

TEST(Classify, MembershipFieldDoesNotAffectAbstractVerdict) {
  // The abstract classifier compares ids only; membership is a sim-level
  // refinement applied *before* classification.
  ProtocolConfig cfg;
  ChannelView a{ChannelFrame{FrameKind::kCState, 2, 0x000F}, ChannelFrame{}};
  ChannelView b{ChannelFrame{FrameKind::kCState, 2, 0x0000}, ChannelFrame{}};
  EXPECT_EQ(classify_view(a, 2, cfg), classify_view(b, 2, cfg));
}

}  // namespace
}  // namespace tta::ttpc
