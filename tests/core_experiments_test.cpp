// End-to-end checks of the experiment runners (the exact configurations the
// benches print).
#include "core/experiments.h"

#include <gtest/gtest.h>

namespace tta::core {
namespace {

TEST(FeatureMatrix, ReproducesSection52Verdicts) {
  auto rows = run_feature_matrix();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].authority, guardian::Authority::kPassive);
  EXPECT_TRUE(rows[0].holds);
  EXPECT_TRUE(rows[1].holds);   // time windows
  EXPECT_TRUE(rows[2].holds);   // small shifting
  EXPECT_FALSE(rows[3].holds);  // full shifting
  EXPECT_GT(rows[3].trace_len, 0u);
  for (const auto& r : rows) {
    EXPECT_GT(r.states, 1000u);
    EXPECT_GT(r.transitions, r.states);
  }
}

TEST(FeatureMatrix, RenderedTableHasVerdictColumn) {
  std::string table = render_feature_matrix(run_feature_matrix());
  EXPECT_NE(table.find("HOLDS"), std::string::npos);
  EXPECT_NE(table.find("VIOLATED"), std::string::npos);
  EXPECT_NE(table.find("full_shifting"), std::string::npos);
}

TEST(TraceExperiments, ColdStartDuplicationNarrates) {
  TraceExperiment exp = run_trace_coldstart_duplication();
  EXPECT_FALSE(exp.result.holds());
  EXPECT_NE(exp.narration.find("replays the buffered cold_start"),
            std::string::npos);
  EXPECT_NE(exp.narration.find("FROZE"), std::string::npos);
  EXPECT_FALSE(exp.table.empty());
}

TEST(TraceExperiments, CStateDuplicationNarrates) {
  TraceExperiment exp = run_trace_cstate_duplication();
  EXPECT_FALSE(exp.result.holds());
  EXPECT_NE(exp.narration.find("replays the buffered c_state"),
            std::string::npos);
  EXPECT_EQ(exp.narration.find("replays the buffered cold_start"),
            std::string::npos);
}

TEST(TraceExperiments, UnconstrainedIsShortest) {
  TraceExperiment unconstrained = run_trace_unconstrained();
  TraceExperiment limited = run_trace_coldstart_duplication();
  EXPECT_LT(unconstrained.result.trace.size(), limited.result.trace.size());
}

TEST(TopologyMatrix, KeyCellsMatchThePaperStory) {
  auto rows = run_topology_fault_matrix();
  auto find = [&](const std::string& scenario, sim::Topology topo,
                  guardian::Authority a) -> const TopologyFaultRow& {
    for (const auto& r : rows) {
      if (r.scenario == scenario && r.topology == topo && r.authority == a) {
        return r;
      }
    }
    ADD_FAILURE() << "row not found: " << scenario;
    static TopologyFaultRow dummy;
    return dummy;
  };

  // Fault-free baseline: everything starts everywhere.
  EXPECT_TRUE(find("no_fault", sim::Topology::kBus,
                   guardian::Authority::kPassive)
                  .startup_ok);
  EXPECT_TRUE(find("no_fault", sim::Topology::kStar,
                   guardian::Authority::kSmallShifting)
                  .startup_ok);

  // SOS: freezes healthy nodes on the bus, eliminated by reshaping.
  EXPECT_GT(find("sos_value", sim::Topology::kBus,
                 guardian::Authority::kPassive)
                .healthy_frozen,
            0u);
  EXPECT_EQ(find("sos_value", sim::Topology::kStar,
                 guardian::Authority::kSmallShifting)
                .healthy_frozen,
            0u);

  // Masquerade: captures integrations on the bus, blocked by semantics.
  EXPECT_GT(find("masquerade_startup", sim::Topology::kBus,
                 guardian::Authority::kPassive)
                .masquerade_integrations,
            0u);
  EXPECT_EQ(find("masquerade_startup", sim::Topology::kStar,
                 guardian::Authority::kSmallShifting)
                .masquerade_integrations,
            0u);

  // Babbling from power-on: kills the bus, contained by the central
  // guardian's activity supervision.
  EXPECT_FALSE(find("babbling_from_power_on", sim::Topology::kBus,
                    guardian::Authority::kPassive)
                   .startup_ok);
  EXPECT_TRUE(find("babbling_from_power_on", sim::Topology::kStar,
                   guardian::Authority::kTimeWindows)
                  .startup_ok);

  // Bad C-state vs a late joiner: poisoned on the bus, safe behind the
  // semantic guardian.
  EXPECT_GT(find("bad_cstate_late_join", sim::Topology::kBus,
                 guardian::Authority::kPassive)
                .healthy_frozen,
            0u);
  EXPECT_EQ(find("bad_cstate_late_join", sim::Topology::kStar,
                 guardian::Authority::kSmallShifting)
                .healthy_frozen,
            0u);
}

TEST(TopologyMatrix, RendersAllScenarios) {
  auto rows = run_topology_fault_matrix(/*steps=*/300);
  std::string table = render_topology_fault_matrix(rows);
  EXPECT_NE(table.find("sos_value"), std::string::npos);
  EXPECT_NE(table.find("masquerade_startup"), std::string::npos);
  EXPECT_NE(table.find("babbling_steady_state"), std::string::npos);
}

TEST(IntegrationVulnerability, BusVulnerableStarProtected) {
  auto rows = run_integration_vulnerability();
  for (const auto& r : rows) {
    EXPECT_EQ(r.total, 8u);
    if (r.topology == sim::Topology::kBus) {
      EXPECT_GT(r.damaged, 0u);
    }
    if (r.authority == guardian::Authority::kSmallShifting) {
      EXPECT_EQ(r.damaged, 0u);
    }
  }
}

TEST(Ablation, FullShiftingBuysFeaturesAndLosesTheProperty) {
  auto rows = run_authority_ablation();
  ASSERT_EQ(rows.size(), 4u);
  const AblationRow& full = rows[3];
  EXPECT_TRUE(full.frame_buffering);
  EXPECT_TRUE(full.replay_fault_possible);
  EXPECT_FALSE(full.property_holds);
  const AblationRow& small = rows[2];
  EXPECT_FALSE(small.frame_buffering);
  EXPECT_TRUE(small.sos_protection);
  EXPECT_TRUE(small.startup_masquerade_protection);
  EXPECT_TRUE(small.property_holds);
  std::string table = render_authority_ablation(rows);
  EXPECT_NE(table.find("mailbox/CAN features"), std::string::npos);
}

}  // namespace
}  // namespace tta::core
