#include "sim/trace.h"

#include <gtest/gtest.h>

namespace tta::sim {
namespace {

StepRecord make_record(std::uint64_t step) {
  StepRecord rec;
  rec.step = step;
  rec.channel0 = ttpc::ChannelFrame{ttpc::FrameKind::kCState, 2};
  rec.channel1 = ttpc::ChannelFrame{ttpc::FrameKind::kBad, 0};
  NodeSnapshot snap;
  snap.state.state = ttpc::CtrlState::kActive;
  snap.state.slot = 2;
  snap.state.agreed = 3;
  snap.event = ttpc::StepEvent::kCliqueToActive;
  snap.sent = ttpc::ChannelFrame{ttpc::FrameKind::kCState, 2};
  rec.nodes.push_back(snap);
  return rec;
}

TEST(EventLog, StartsEmpty) {
  EventLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.render(), "");
}

TEST(EventLog, RecordsInOrder) {
  EventLog log;
  log.record(make_record(0));
  log.record(make_record(1));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].step, 0u);
  EXPECT_EQ(log.records()[1].step, 1u);
}

TEST(EventLog, RenderShowsFramesStatesAndEvents) {
  EventLog log;
  log.record(make_record(7));
  std::string out = log.render();
  EXPECT_NE(out.find("step    7"), std::string::npos);
  EXPECT_NE(out.find("c_state(id=2)"), std::string::npos);
  EXPECT_NE(out.find("noise"), std::string::npos);
  EXPECT_NE(out.find("active"), std::string::npos);
  EXPECT_NE(out.find("clique test passed"), std::string::npos);
  EXPECT_NE(out.find("[sent c_state(id=2)]"), std::string::npos);
}

TEST(EventLog, RenderTailLimitsSteps) {
  EventLog log;
  for (std::uint64_t s = 0; s < 10; ++s) log.record(make_record(s));
  std::string tail = log.render(3);
  EXPECT_EQ(tail.find("step    6"), std::string::npos);
  EXPECT_NE(tail.find("step    7"), std::string::npos);
  EXPECT_NE(tail.find("step    9"), std::string::npos);
}

TEST(EventLog, ClearEmptiesTheLog) {
  EventLog log;
  log.record(make_record(0));
  log.clear();
  EXPECT_TRUE(log.empty());
}

TEST(EventLog, SilentChannelRendersAsDash) {
  EventLog log;
  StepRecord rec;
  rec.step = 0;
  std::string out = (log.record(rec), log.render());
  EXPECT_NE(out.find("ch0=-"), std::string::npos);
}

}  // namespace
}  // namespace tta::sim
