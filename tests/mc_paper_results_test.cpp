// The paper's Section 5 results, as executable assertions. This suite is
// the reproduction's contract: if any of these fail, the repository no
// longer reproduces the paper.
#include <gtest/gtest.h>

#include "mc/checker.h"
#include "mc/trace_printer.h"

namespace tta::mc {
namespace {

ModelConfig config(guardian::Authority a) {
  ModelConfig cfg;
  cfg.authority = a;
  return cfg;
}

class AuthorityVerification
    : public ::testing::TestWithParam<guardian::Authority> {};

TEST_P(AuthorityVerification, NonBufferingCouplersSatisfyTheProperty) {
  // "For the passive, time windows, and small shifting couplers we verify
  // that the property above holds."
  TtpcStarModel model(config(GetParam()));
  auto res = Checker(model).check(no_integrated_node_freezes());
  EXPECT_TRUE(res.holds());
  EXPECT_TRUE(res.stats.exhausted);  // exhaustive, hence a real verification
}

INSTANTIATE_TEST_SUITE_P(PaperSection52, AuthorityVerification,
                         ::testing::Values(guardian::Authority::kPassive,
                                           guardian::Authority::kTimeWindows,
                                           guardian::Authority::kSmallShifting));

TEST(PaperResults, FullShiftingViolatesTheProperty) {
  // "For the configuration that allows any star coupler to buffer full
  // frames and replay them in a later time slot, we obtain counter
  // examples."
  TtpcStarModel model(config(guardian::Authority::kFullShifting));
  auto res = Checker(model).check(no_integrated_node_freezes());
  EXPECT_FALSE(res.holds());
  EXPECT_FALSE(res.trace.empty());
}

TEST(PaperResults, UnconstrainedShortestTraceUsesMultipleReplays) {
  // "the shortest error trace contains four out-of-slot errors" — our
  // model's shortest unconstrained trace also leans on repeated replays
  // (more than the single-error budget would allow).
  TtpcStarModel model(config(guardian::Authority::kFullShifting));
  auto res = Checker(model).check(no_integrated_node_freezes());
  ASSERT_FALSE(res.holds());
  unsigned replays = 0;
  for (const TraceStep& step : res.trace) {
    replays += (step.label.fault0 == guardian::CouplerFault::kOutOfSlot);
    replays += (step.label.fault1 == guardian::CouplerFault::kOutOfSlot);
  }
  EXPECT_GE(replays, 2u);
}

TEST(PaperResults, SingleReplayStillBreaksStartupIntegration) {
  // "we add a constraint to the model which limits the number of out-of-
  // slot errors to one. This results in a slightly longer trace, but still
  // produces an error."
  ModelConfig cfg = config(guardian::Authority::kFullShifting);
  cfg.max_out_of_slot_errors = 1;
  TtpcStarModel model(cfg);
  auto res = Checker(model).check(no_integrated_node_freezes());
  ASSERT_FALSE(res.holds());

  // Exactly one replay occurs, and it duplicates a cold-start frame.
  unsigned replays = 0;
  bool coldstart_replayed = false;
  for (const TraceStep& step : res.trace) {
    for (auto [fault, frame] :
         {std::pair{step.label.fault0, step.label.ch0},
          std::pair{step.label.fault1, step.label.ch1}}) {
      if (fault == guardian::CouplerFault::kOutOfSlot) {
        ++replays;
        coldstart_replayed |= frame.kind == ttpc::FrameKind::kColdStart;
      }
    }
  }
  EXPECT_EQ(replays, 1u);
  EXPECT_TRUE(coldstart_replayed);

  // The victim is forced out by the clique-avoidance service.
  bool clique_freeze = false;
  for (std::size_t i = 0; i < model.num_nodes(); ++i) {
    clique_freeze |= res.trace.back().label.events[i] ==
                     ttpc::StepEvent::kCliqueFreeze;
  }
  EXPECT_TRUE(clique_freeze);
}

TEST(PaperResults, CStateDuplicationTraceExistsWhenColdStartForbidden) {
  // "The error may also be triggered by duplicating a C-state frame. We
  // obtain such a trace by adding a constraint which prohibits the
  // duplication of cold start frames."
  ModelConfig cfg = config(guardian::Authority::kFullShifting);
  cfg.max_out_of_slot_errors = 1;
  cfg.allow_coldstart_duplication = false;
  TtpcStarModel model(cfg);
  auto res = Checker(model).check(no_integrated_node_freezes());
  ASSERT_FALSE(res.holds());
  bool cstate_replayed = false;
  for (const TraceStep& step : res.trace) {
    for (auto [fault, frame] :
         {std::pair{step.label.fault0, step.label.ch0},
          std::pair{step.label.fault1, step.label.ch1}}) {
      if (fault == guardian::CouplerFault::kOutOfSlot) {
        EXPECT_NE(frame.kind, ttpc::FrameKind::kColdStart);
        cstate_replayed |= frame.kind == ttpc::FrameKind::kCState;
      }
    }
  }
  EXPECT_TRUE(cstate_replayed);
}

TEST(PaperResults, ConstrainedTracesAreProgressivelyLonger) {
  // Shortest unconstrained < shortest single-error < shortest
  // no-cold-start-duplication — the ordering the paper reports.
  auto trace_length = [](const ModelConfig& cfg) {
    TtpcStarModel model(cfg);
    auto res = Checker(model).check(no_integrated_node_freezes());
    EXPECT_FALSE(res.holds());
    return res.trace.size();
  };
  ModelConfig unconstrained = config(guardian::Authority::kFullShifting);
  ModelConfig one_error = unconstrained;
  one_error.max_out_of_slot_errors = 1;
  ModelConfig no_cs_dup = one_error;
  no_cs_dup.allow_coldstart_duplication = false;

  std::size_t l0 = trace_length(unconstrained);
  std::size_t l1 = trace_length(one_error);
  std::size_t l2 = trace_length(no_cs_dup);
  EXPECT_LT(l0, l1);
  EXPECT_LT(l1, l2);
}

TEST(PaperResults, TracesGenerateInUnderAMinute) {
  // "Both traces are generated in less a than a minute on a 1.5 GHz AMD
  // machine." Modern hardware beats that by orders of magnitude; a minute
  // is the contract.
  ModelConfig cfg = config(guardian::Authority::kFullShifting);
  cfg.max_out_of_slot_errors = 1;
  TtpcStarModel m1(cfg);
  auto r1 = Checker(m1).check(no_integrated_node_freezes());
  cfg.allow_coldstart_duplication = false;
  TtpcStarModel m2(cfg);
  auto r2 = Checker(m2).check(no_integrated_node_freezes());
  EXPECT_LT(r1.stats.seconds + r2.stats.seconds, 60.0);
}

TEST(PaperResults, NarrationMentionsTheReplayAndTheFreeze) {
  ModelConfig cfg = config(guardian::Authority::kFullShifting);
  cfg.max_out_of_slot_errors = 1;
  TtpcStarModel model(cfg);
  auto res = Checker(model).check(no_integrated_node_freezes());
  TracePrinter printer(model);
  std::string story = printer.narrate(res.trace);
  EXPECT_NE(story.find("Initially, all nodes are in the freeze state"),
            std::string::npos);
  EXPECT_NE(story.find("replays the buffered"), std::string::npos);
  EXPECT_NE(story.find("FROZE due to clique avoidance error"),
            std::string::npos);
  std::string table = printer.table(res.trace);
  EXPECT_NE(table.find("cold_start"), std::string::npos);
}

TEST(PaperResults, BigBangRemovalMakesSingleFakeColdStartDangerous) {
  // Ablation from DESIGN.md §7: without the big-bang rule, integration
  // happens on the *first* cold-start frame, so a single replayed frame
  // captures listeners immediately — counterexamples can only get shorter.
  ModelConfig with_bb = config(guardian::Authority::kFullShifting);
  with_bb.max_out_of_slot_errors = 1;
  ModelConfig without_bb = with_bb;
  without_bb.protocol.big_bang_enabled = false;

  TtpcStarModel m_with(with_bb);
  TtpcStarModel m_without(without_bb);
  auto r_with = Checker(m_with).check(no_integrated_node_freezes());
  auto r_without = Checker(m_without).check(no_integrated_node_freezes());
  ASSERT_FALSE(r_with.holds());
  ASSERT_FALSE(r_without.holds());
  EXPECT_LE(r_without.trace.size(), r_with.trace.size());
}

TEST(PaperResults, ThreeNodeClusterShowsTheSameDichotomy) {
  // Robustness of the result across cluster sizes.
  for (std::uint8_t n : {std::uint8_t{3}, std::uint8_t{5}}) {
    ModelConfig safe = config(guardian::Authority::kSmallShifting);
    safe.protocol.num_nodes = n;
    safe.protocol.num_slots = n;
    TtpcStarModel m_safe(safe);
    EXPECT_TRUE(Checker(m_safe).check(no_integrated_node_freezes()).holds())
        << "n=" << int(n);

    ModelConfig unsafe = config(guardian::Authority::kFullShifting);
    unsafe.protocol.num_nodes = n;
    unsafe.protocol.num_slots = n;
    TtpcStarModel m_unsafe(unsafe);
    EXPECT_FALSE(Checker(m_unsafe).check(no_integrated_node_freezes()).holds())
        << "n=" << int(n);
  }
}

}  // namespace
}  // namespace tta::mc
