// Wilson estimation and the Monte Carlo campaign runner: known-answer
// intervals, the three-armed stopping rule, counter-based per-trial
// determinism across thread counts (the runner's headline contract,
// labeled `parallel` so the TSan job covers it), analytic coverage on a
// hand-computable dual-silence scenario, and the fault-dictionary
// grammar's round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/estimate.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "util/cancel_token.h"
#include "util/thread_pool.h"

namespace tta::campaign {
namespace {

/// Dual-channel silence at probability `ppm` each, scored by the startup
/// criterion. Failure needs BOTH channels dead — a single silent channel
/// is masked by the replica — so the analytic failure probability is
/// exactly (ppm / 1e6)^2.
CampaignSpec dual_silence_spec(std::uint32_t ppm, std::uint32_t trials) {
  CampaignSpec spec;
  spec.criterion = Criterion::kAllActiveReached;
  spec.steps = 64;
  spec.seed = 20040628;
  spec.min_trials = trials;
  spec.max_trials = trials;
  spec.batch_size = 64;
  spec.epsilon_ppm = 1;  // unreachable: always run the pinned trial count
  for (int ch = 0; ch < 2; ++ch) {
    CouplerFaultEntry e;
    e.channel = ch;
    e.fault = guardian::CouplerFault::kSilence;
    e.ppm = ppm;
    spec.coupler_faults.push_back(e);
  }
  return spec;
}

TEST(WilsonEstimate, EmptyCampaignKnowsNothing) {
  const Estimate est = wilson_estimate(0, 0);
  EXPECT_EQ(est.trials, 0u);
  EXPECT_EQ(est.failures, 0u);
  EXPECT_DOUBLE_EQ(est.p_hat, 0.0);
  EXPECT_DOUBLE_EQ(est.ci_low, 0.0);
  EXPECT_DOUBLE_EQ(est.ci_high, 1.0);
  EXPECT_DOUBLE_EQ(est.half_width(), 0.5);
}

TEST(WilsonEstimate, KnownAnswers) {
  // 0/100 at 95%: the Wilson upper limit is z^2/n / (1 + z^2/n) = 0.03700
  // — finite even after a pure-success streak, which is the reason Wilson
  // is used over Wald (whose interval collapses to width zero here).
  const Estimate none = wilson_estimate(0, 100);
  EXPECT_DOUBLE_EQ(none.p_hat, 0.0);
  EXPECT_DOUBLE_EQ(none.ci_low, 0.0);
  EXPECT_NEAR(none.ci_high, 0.03700, 5e-4);

  // 50/100: symmetric around 1/2 with half-width 0.09617.
  const Estimate half = wilson_estimate(50, 100);
  EXPECT_DOUBLE_EQ(half.p_hat, 0.5);
  EXPECT_NEAR(half.ci_low, 0.40383, 1e-3);
  EXPECT_NEAR(half.ci_high, 0.59617, 1e-3);
  EXPECT_NEAR(half.ci_high - 0.5, 0.5 - half.ci_low, 1e-12);

  // All-failure campaigns pin the upper limit to exactly 1.
  const Estimate all = wilson_estimate(100, 100);
  EXPECT_DOUBLE_EQ(all.p_hat, 1.0);
  EXPECT_DOUBLE_EQ(all.ci_high, 1.0);
  EXPECT_GT(all.ci_low, 0.9);
}

TEST(WilsonEstimate, IntervalNarrowsWithTrials) {
  double previous = 1.0;
  for (std::uint64_t n : {10u, 100u, 1000u, 10000u}) {
    const Estimate est = wilson_estimate(n / 10, n);
    EXPECT_LE(0.0, est.ci_low);
    EXPECT_LE(est.ci_low, est.p_hat);
    EXPECT_LE(est.p_hat, est.ci_high);
    EXPECT_LE(est.ci_high, 1.0);
    EXPECT_LT(est.half_width(), previous);
    previous = est.half_width();
  }
}

TEST(StopRule, ThreeArms) {
  CampaignSpec spec = dual_silence_spec(400'000, 64);
  spec.epsilon_ppm = 10'000;
  spec.fail_bound_ppm = 200'000;

  Estimate est;
  est.trials = 1000;
  est.p_hat = 0.3;

  // Straddling the bound with a wide interval: keep sampling.
  est.ci_low = 0.1;
  est.ci_high = 0.5;
  EXPECT_FALSE(stop_rule_met(spec, est));

  // Arm 1: the interval is narrower than epsilon.
  est.ci_low = 0.299;
  est.ci_high = 0.301;
  EXPECT_TRUE(stop_rule_met(spec, est));

  // Arm 2: the whole interval sits at or below the bound — HOLDS is
  // decided no matter how many more trials run.
  est.ci_low = 0.05;
  est.ci_high = 0.2;
  EXPECT_TRUE(stop_rule_met(spec, est));

  // Arm 3: the whole interval sits above the bound — VIOLATED is decided.
  est.ci_low = 0.201;
  est.ci_high = 0.6;
  EXPECT_TRUE(stop_rule_met(spec, est));
}

TEST(CampaignRunner, TrialOutcomeIsAPureFunctionOfSpecAndIndex) {
  const CampaignSpec spec = dual_silence_spec(400'000, 64);
  std::vector<bool> first;
  for (std::uint64_t i = 0; i < 64; ++i) first.push_back(trial_fails(spec, i));
  // Replaying any trial — in any order, after any other trials — gives the
  // same outcome; there is no hidden stream state.
  for (std::uint64_t i = 64; i-- > 0;) {
    EXPECT_EQ(trial_fails(spec, i), first[static_cast<std::size_t>(i)])
        << "trial " << i;
  }
}

TEST(CampaignRunner, BitIdenticalAtAnyThreadCount) {
  const CampaignSpec spec = dual_silence_spec(400'000, 512);

  const CampaignResult sequential = run_campaign(spec, nullptr);
  util::ThreadPool two(2);
  const CampaignResult pooled2 = run_campaign(spec, &two);
  util::ThreadPool eight(8);
  const CampaignResult pooled8 = run_campaign(spec, &eight);

  for (const CampaignResult* r : {&pooled2, &pooled8}) {
    EXPECT_EQ(r->estimate.trials, sequential.estimate.trials);
    EXPECT_EQ(r->estimate.failures, sequential.estimate.failures);
    EXPECT_EQ(r->estimate.p_hat, sequential.estimate.p_hat);
    EXPECT_EQ(r->estimate.ci_low, sequential.estimate.ci_low);
    EXPECT_EQ(r->estimate.ci_high, sequential.estimate.ci_high);
    EXPECT_EQ(r->batches, sequential.batches);
    EXPECT_EQ(r->conclusive, sequential.conclusive);
  }
  EXPECT_EQ(sequential.estimate.trials, 512u);
  EXPECT_GT(sequential.estimate.failures, 0u);
}

TEST(CampaignRunner, WilsonIntervalCoversAnalyticProbability) {
  // Hand-computable scenario: two independent channel-silence entries at
  // p = 0.4 each. The startup criterion fails iff both fire, so the true
  // failure probability is 0.4^2 = 0.16; the 95% interval at 4096 trials
  // must cover it.
  const CampaignSpec spec = dual_silence_spec(400'000, 4096);
  const CampaignResult run = run_campaign(spec, nullptr);
  EXPECT_EQ(run.estimate.trials, 4096u);
  EXPECT_LE(run.estimate.ci_low, 0.16);
  EXPECT_GE(run.estimate.ci_high, 0.16);
  EXPECT_NEAR(run.estimate.p_hat, 0.16, 0.03);
}

TEST(CampaignRunner, WideEpsilonStopsAtMinTrials) {
  CampaignSpec spec = dual_silence_spec(400'000, 64);
  spec.min_trials = 64;
  spec.max_trials = 100'000;
  spec.epsilon_ppm = kPpmScale;  // any interval satisfies epsilon
  const CampaignResult run = run_campaign(spec, nullptr);
  EXPECT_TRUE(run.conclusive);
  EXPECT_EQ(run.estimate.trials, 64u);
  EXPECT_EQ(run.batches, 1u);
}

TEST(CampaignRunner, ExhaustedCampaignIsInconclusive) {
  // Unreachable epsilon and a fail bound inside the interval: the runner
  // must spend exactly max_trials and admit it cannot answer.
  CampaignSpec spec = dual_silence_spec(400'000, 512);
  spec.fail_bound_ppm = 160'000;  // the analytic probability itself
  const CampaignResult run = run_campaign(spec, nullptr);
  EXPECT_FALSE(run.conclusive);
  EXPECT_EQ(run.estimate.trials, 512u);
  EXPECT_LE(run.estimate.ci_low, 0.16);
  EXPECT_GE(run.estimate.ci_high, 0.16);
}

TEST(CampaignRunner, CancelBeforeFirstBatch) {
  const CampaignSpec spec = dual_silence_spec(400'000, 512);
  util::CancelToken cancel;
  cancel.request_cancel();
  const CampaignResult run = run_campaign(spec, nullptr, &cancel);
  EXPECT_TRUE(run.cancelled);
  EXPECT_FALSE(run.conclusive);
  EXPECT_EQ(run.batches, 0u);
  EXPECT_EQ(run.estimate.trials, 0u);
  EXPECT_DOUBLE_EQ(run.estimate.ci_low, 0.0);
  EXPECT_DOUBLE_EQ(run.estimate.ci_high, 1.0);
}

TEST(CampaignRunner, ProgressReportsEveryBatchInOrder) {
  const CampaignSpec spec = dual_silence_spec(400'000, 256);
  std::vector<BatchUpdate> updates;
  const CampaignResult run = run_campaign(
      spec, nullptr, nullptr,
      [&updates](const BatchUpdate& u) { updates.push_back(u); });
  ASSERT_EQ(updates.size(), 4u);  // 256 trials / 64-trial batches
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(updates[i].batches, i + 1);
    EXPECT_EQ(updates[i].estimate.trials, 64u * (i + 1));
  }
  EXPECT_EQ(updates.back().estimate.p_hat, run.estimate.p_hat);
  EXPECT_EQ(updates.back().estimate.failures, run.estimate.failures);
}

TEST(FaultDictionary, RoundTripsThroughTheGrammar) {
  const std::string text =
      "coupler:0:silence:400000;coupler:*:bad_frame:10000@5-9;"
      "node:*:clock_drift:250000;node:2:silent:5000@0-63";
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(parse_fault_dictionary(text, &spec, &error)) << error;
  ASSERT_EQ(spec.coupler_faults.size(), 2u);
  ASSERT_EQ(spec.node_faults.size(), 2u);
  EXPECT_EQ(spec.coupler_faults[0].channel, 0);
  EXPECT_EQ(spec.coupler_faults[0].fault, guardian::CouplerFault::kSilence);
  EXPECT_EQ(spec.coupler_faults[0].ppm, 400'000u);
  EXPECT_EQ(spec.coupler_faults[1].channel, kAnyTarget);
  EXPECT_EQ(spec.coupler_faults[1].from_step, 5u);
  EXPECT_EQ(spec.coupler_faults[1].to_step, 9u);
  EXPECT_EQ(spec.node_faults[0].node, kAnyTarget);
  EXPECT_EQ(spec.node_faults[0].mode, sim::NodeFaultMode::kClockDrift);
  EXPECT_EQ(spec.node_faults[1].node, 2);
  EXPECT_EQ(spec.node_faults[1].mode, sim::NodeFaultMode::kSilent);
  EXPECT_EQ(format_fault_dictionary(spec), text);
}

TEST(FaultDictionary, MalformedEntriesNameTheEntry) {
  CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(parse_fault_dictionary("coupler:0:silence", &spec, &error));
  EXPECT_NE(error.find("coupler:0:silence"), std::string::npos);
  error.clear();
  EXPECT_FALSE(
      parse_fault_dictionary("node:1:warp_core:100", &spec, &error));
  EXPECT_NE(error.find("unknown node fault mode"), std::string::npos);
  error.clear();
  EXPECT_FALSE(
      parse_fault_dictionary("coupler:0:silence:2000000", &spec, &error));
  EXPECT_NE(error.find("bad ppm"), std::string::npos);
}

TEST(CampaignSpecValidate, RejectsInconsistentPlans) {
  CampaignSpec ok = dual_silence_spec(400'000, 64);
  EXPECT_TRUE(ok.validate().empty());

  CampaignSpec bad = ok;
  bad.num_channels = 3;
  EXPECT_FALSE(bad.validate().empty());

  bad = ok;
  bad.min_trials = 100;
  bad.max_trials = 50;
  EXPECT_FALSE(bad.validate().empty());

  bad = ok;
  bad.batch_size = 0;
  EXPECT_FALSE(bad.validate().empty());

  bad = ok;
  bad.coupler_faults.clear();
  EXPECT_FALSE(bad.validate().empty());  // dictionary must be non-empty

  bad = ok;
  bad.coupler_faults[0].channel = 2;  // only channels 0/1 exist
  EXPECT_FALSE(bad.validate().empty());

  bad = ok;
  NodeFaultEntry e;
  e.node = 5;  // 4-node cluster
  e.mode = sim::NodeFaultMode::kSilent;
  e.ppm = 1000;
  bad.node_faults.push_back(e);
  EXPECT_FALSE(bad.validate().empty());
}

TEST(CampaignSpec, CriterionNames) {
  EXPECT_STREQ(to_string(Criterion::kAllActiveReached), "all_active");
  EXPECT_STREQ(to_string(Criterion::kNoHealthyCliqueFreeze),
               "no_healthy_freeze");
}

}  // namespace
}  // namespace tta::campaign
