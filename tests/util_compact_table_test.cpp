#include "util/compact_state_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/concurrent_state_table.h"
#include "util/thread_pool.h"

namespace tta::util {
namespace {

// 104 significant bits, like the flat-table test's keys.
constexpr unsigned kTestKeyBits = 104;

PackedState make_key(std::uint64_t n) {
  PackedState p;
  BitWriter w(p);
  w.write(n, 64);
  w.write(n ^ 0xDEADBEEF, 40);
  return p;
}

TEST(CompactStateTable, InsertIfAbsentBasics) {
  CompactStateTable<int> table(1024, kTestKeyBits);
  auto a = table.insert(make_key(1), 10);
  EXPECT_TRUE(a.inserted);
  ASSERT_NE(a.slot, CompactStateTable<int>::kNoSlot);
  auto b = table.insert(make_key(1), 99);
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(b.slot, a.slot);
  EXPECT_EQ(table.value_at(a.slot), 10);  // loser's value is discarded
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.occupied(a.slot));
}

TEST(CompactStateTable, KeyAtInvertsTheQuotient) {
  // The slot stores only (displacement, remainder); key_at() must still
  // reproduce the exact original key, because the mix is a bijection.
  CompactStateTable<int> table(256, kTestKeyBits);
  for (std::uint64_t i = 0; i < 150; ++i) {
    auto r = table.insert(make_key(i), static_cast<int>(i));
    ASSERT_TRUE(r.inserted) << i;
    EXPECT_EQ(table.key_at(r.slot), make_key(i)) << i;
  }
}

TEST(CompactStateTable, FindHitsAndMisses) {
  CompactStateTable<int> table(1024, kTestKeyBits);
  for (std::uint64_t i = 0; i < 100; ++i) {
    table.insert(make_key(i), static_cast<int>(i));
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    std::uint32_t slot = table.find(make_key(i));
    ASSERT_NE(slot, CompactStateTable<int>::kNoSlot) << i;
    EXPECT_EQ(table.value_at(slot), static_cast<int>(i));
  }
  EXPECT_EQ(table.find(make_key(12345)), CompactStateTable<int>::kNoSlot);
}

TEST(CompactStateTable, SaturationIsReportedNotSilent) {
  // 64 slots -> max_load = 48; the 49th distinct key must get {kNoSlot,
  // false}, never a silent overwrite or a false "already present".
  CompactStateTable<int> table(64, kTestKeyBits);
  std::size_t accepted = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    if (table.insert(make_key(i), 0).slot !=
        CompactStateTable<int>::kNoSlot) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, table.max_load());
  // Already-present keys still resolve after saturation.
  EXPECT_NE(table.insert(make_key(0), 0).slot,
            CompactStateTable<int>::kNoSlot);
}

TEST(CompactStateTable, SaturationRecoversAfterRebuild) {
  // The checker's growth path end to end: saturate, rebuild bigger, retry
  // the refused inserts, and verify nothing already stored was disturbed.
  CompactStateTable<int> table(64, kTestKeyBits);
  std::vector<std::uint64_t> refused;
  for (std::uint64_t i = 0; i < 200; ++i) {
    if (table.insert(make_key(i), static_cast<int>(i)).slot ==
        CompactStateTable<int>::kNoSlot) {
      refused.push_back(i);
    }
  }
  ASSERT_FALSE(refused.empty());
  table.rebuild(1024);
  for (std::uint64_t i : refused) {
    auto r = table.insert(make_key(i), static_cast<int>(i));
    EXPECT_TRUE(r.inserted) << i;
  }
  EXPECT_EQ(table.size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    std::uint32_t slot = table.find(make_key(i));
    ASSERT_NE(slot, CompactStateTable<int>::kNoSlot) << i;
    EXPECT_EQ(table.value_at(slot), static_cast<int>(i));
    EXPECT_EQ(table.key_at(slot), make_key(i));
  }
}

TEST(CompactStateTable, RebuildGrowsAndRemaps) {
  // rebuild() re-places entries from stored quotients under a *different*
  // bucket split (more home bits, fewer remainder bits): every key must
  // survive with its value, its remap entry, and an exact key_at().
  CompactStateTable<int> table(64, kTestKeyBits);
  std::vector<std::uint32_t> slots;
  for (std::uint64_t i = 0; i < 48; ++i) {
    slots.push_back(table.insert(make_key(i), static_cast<int>(i)).slot);
  }
  std::vector<std::uint32_t> remap = table.rebuild(256);
  EXPECT_EQ(table.capacity(), 256u);
  EXPECT_EQ(table.size(), 48u);
  for (std::uint64_t i = 0; i < 48; ++i) {
    std::uint32_t moved = remap[slots[i]];
    ASSERT_NE(moved, CompactStateTable<int>::kNoSlot);
    EXPECT_EQ(table.value_at(moved), static_cast<int>(i));
    EXPECT_EQ(table.key_at(moved), make_key(i));
    EXPECT_EQ(table.find(make_key(i)), moved);
  }
}

TEST(CompactStateTable, RebuildDropsSelectedEntries) {
  CompactStateTable<int> table(256, kTestKeyBits);
  std::vector<std::uint32_t> slots;
  for (std::uint64_t i = 0; i < 100; ++i) {
    slots.push_back(table.insert(make_key(i), static_cast<int>(i)).slot);
  }
  std::vector<std::uint32_t> remap =
      table.rebuild(256, [](const int& v) { return v % 2 == 1; });
  EXPECT_EQ(table.size(), 50u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (i % 2 == 1) {
      EXPECT_EQ(remap[slots[i]], CompactStateTable<int>::kNoSlot);
      EXPECT_EQ(table.find(make_key(i)), CompactStateTable<int>::kNoSlot);
    } else {
      EXPECT_EQ(table.find(make_key(i)), remap[slots[i]]);
    }
  }
}

TEST(CompactStateTable, HashedTokenSurvivesRebuild) {
  // The memoized token is capacity-independent (the bucket split happens
  // per call), so a token computed before a rebuild keeps resolving after.
  CompactStateTable<int> table(64, kTestKeyBits);
  const auto hashed = table.hash(make_key(7));
  table.insert(make_key(7), 7, hashed);
  table.rebuild(1024);
  std::uint32_t slot = table.find(make_key(7), hashed);
  ASSERT_NE(slot, CompactStateTable<int>::kNoSlot);
  EXPECT_EQ(table.value_at(slot), 7);
}

TEST(CompactStateTable, NarrowKeysAndZeroRemainder) {
  // key_bits smaller than the bucket bits: the remainder is empty and
  // identity rides on the displacement alone — still exact, because
  // distinct narrow keys mix to distinct buckets (bijection).
  CompactStateTable<int> table(64, /*key_bits=*/4);
  for (std::uint64_t i = 0; i < 16; ++i) {
    PackedState p;
    p.words[0] = i;
    auto r = table.insert(p, static_cast<int>(i));
    ASSERT_TRUE(r.inserted) << i;
  }
  EXPECT_EQ(table.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    PackedState p;
    p.words[0] = i;
    std::uint32_t slot = table.find(p);
    ASSERT_NE(slot, CompactStateTable<int>::kNoSlot) << i;
    EXPECT_EQ(table.value_at(slot), static_cast<int>(i));
    EXPECT_EQ(table.key_at(slot), p);
  }
}

TEST(CompactStateTable, HalvesFlatTableMemoryAtModelWidth) {
  // The tentpole budget, at the 4-node model's packed width (119 bits)
  // with the checkers' 12-byte per-state value: the compact layout must
  // cost at most half the flat layout at equal capacity.
  struct Node {
    std::uint32_t parent;
    std::uint32_t choice;
    std::uint16_t depth;
    std::uint8_t flags;
  };
  CompactStateTable<Node> compact(1u << 16, 119);
  ConcurrentStateTable<Node> flat(1u << 16);
  ASSERT_EQ(compact.capacity(), flat.capacity());
  EXPECT_LE(compact.memory_bytes() * 2, flat.memory_bytes());
}

TEST(CompactStateTable, MixSpreadsPackedStatesAcrossBuckets) {
  // Same balls-into-bins bound as the flat table's hash test, on the
  // mixed words' bucket bits.
  constexpr std::size_t kBuckets = 1u << 16;
  CompactStateTable<int> table(kBuckets, kTestKeyBits);
  std::vector<std::uint32_t> depth(kBuckets, 0);
  std::uint32_t worst = 0;
  for (std::uint64_t i = 0; i < kBuckets; ++i) {
    std::size_t h = table.hash(make_key(i)).raw() & (kBuckets - 1);
    worst = std::max(worst, ++depth[h]);
  }
  EXPECT_LE(worst, 24u);
  std::size_t used = 0;
  for (std::uint32_t d : depth) used += d != 0;
  EXPECT_GT(used, kBuckets / 2);
}

TEST(CompactStateTable, RacingInsertersAgreeOnOneWinnerPerKey) {
  // Same publication-race check as the flat table, against the SoA layout:
  // exactly one insert() per key reports inserted == true, and every
  // thread observes the winner's slot. Run under TSan via the parallel
  // test label.
  constexpr std::uint64_t kKeys = 512;
  constexpr unsigned kThreads = 8;
  CompactStateTable<std::uint32_t> table(4096, kTestKeyBits);

  std::vector<std::vector<std::uint32_t>> slot_of(
      kThreads, std::vector<std::uint32_t>(kKeys));
  std::vector<std::uint64_t> wins(kThreads, 0);
  ThreadPool pool(kThreads);
  pool.run_tasks(kThreads, [&](std::size_t t) {
    // Each thread visits the keys in a different order.
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      std::uint64_t k = (i * 37 + t * 101) % kKeys;
      auto r = table.insert(make_key(k), static_cast<std::uint32_t>(k));
      ASSERT_NE(r.slot, CompactStateTable<std::uint32_t>::kNoSlot);
      slot_of[t][k] = r.slot;
      wins[t] += r.inserted;
    }
  });

  EXPECT_EQ(table.size(), kKeys);
  std::uint64_t total_wins = 0;
  for (std::uint64_t w : wins) total_wins += w;
  EXPECT_EQ(total_wins, kKeys);  // exactly one winner per key
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    for (unsigned t = 1; t < kThreads; ++t) {
      ASSERT_EQ(slot_of[t][k], slot_of[0][k]) << "key " << k;
    }
    EXPECT_EQ(table.value_at(slot_of[0][k]), static_cast<std::uint32_t>(k));
    EXPECT_EQ(table.key_at(slot_of[0][k]), make_key(k));
  }
}

}  // namespace
}  // namespace tta::util
