// The mc::Engine interface and the service's engine factory: kAuto
// resolution against the cost threshold, serial/parallel bit-identity
// through the uniform run() surface, the redundant composition's
// cross-checked answers, and query construction for every property.
// Labeled `parallel`: the parallel and redundant engines spawn threads.
#include <gtest/gtest.h>

#include <memory>

#include "mc/engine.h"
#include "svc/engine_factory.h"

namespace tta::svc {
namespace {

JobSpec spec_for(guardian::Authority a, Property p, std::uint8_t nodes = 3) {
  JobSpec spec;
  spec.model.authority = a;
  spec.model.protocol.num_nodes = nodes;
  spec.model.protocol.num_slots = nodes;
  spec.property = p;
  return spec;
}

TEST(EngineFactory, AutoResolvesByEstimatedCost) {
  JobSpec spec = spec_for(guardian::Authority::kPassive,
                          Property::kNoIntegratedNodeFreezes);
  spec.engine = EngineChoice::kAuto;

  ServiceConfig cheap_threshold;
  cheap_threshold.auto_parallel_threshold = 1.0;  // everything is "big"
  EXPECT_EQ(make_engine(spec, cheap_threshold).resolved,
            EngineChoice::kParallel);

  ServiceConfig huge_threshold;
  huge_threshold.auto_parallel_threshold = 1e18;  // nothing is "big"
  EXPECT_EQ(make_engine(spec, huge_threshold).resolved,
            EngineChoice::kSerial);
}

TEST(EngineFactory, ExplicitChoicesMapToTheirEngines) {
  JobSpec spec = spec_for(guardian::Authority::kPassive,
                          Property::kNoIntegratedNodeFreezes);
  ServiceConfig config;

  spec.engine = EngineChoice::kSerial;
  EngineSelection serial = make_engine(spec, config);
  EXPECT_EQ(serial.resolved, EngineChoice::kSerial);
  EXPECT_STREQ(serial.engine->name(), "serial");
  EXPECT_TRUE(serial.engine->supports_checkpoint());

  spec.engine = EngineChoice::kParallel;
  EngineSelection parallel = make_engine(spec, config);
  EXPECT_EQ(parallel.resolved, EngineChoice::kParallel);
  EXPECT_STREQ(parallel.engine->name(), "parallel");

  spec.engine = EngineChoice::kRedundant;
  EngineSelection redundant = make_engine(spec, config);
  EXPECT_EQ(redundant.resolved, EngineChoice::kRedundant);
  EXPECT_STREQ(redundant.engine->name(), "redundant");
  // Two engines must never share one checkpoint file.
  EXPECT_FALSE(redundant.engine->supports_checkpoint());

  spec.engine = EngineChoice::kSwarm;
  spec.seed = 123;
  EngineSelection swarm = make_engine(spec, config);
  EXPECT_EQ(swarm.resolved, EngineChoice::kSwarm);
  EXPECT_STREQ(swarm.engine->name(), "swarm");
  // Racers keep private tables; no canonical wavefront exists to resume.
  EXPECT_FALSE(swarm.engine->supports_checkpoint());
}

TEST(Engine, SerialAndParallelAreBitIdenticalThroughTheInterface) {
  for (Property property : {Property::kNoIntegratedNodeFreezes,
                            Property::kAllActiveReachable,
                            Property::kRecoverability}) {
    const JobSpec spec =
        spec_for(guardian::Authority::kSmallShifting, property);
    mc::TtpcStarModel model(spec.model);
    const mc::EngineQuery query = make_engine_query(spec, model);

    const mc::EngineResult serial =
        mc::SerialEngine().run(model, query, nullptr, nullptr);
    const mc::EngineResult parallel =
        mc::ParallelEngine(4).run(model, query, nullptr, nullptr);

    EXPECT_EQ(serial.verdict, parallel.verdict) << to_string(property);
    EXPECT_EQ(serial.stats.states_explored, parallel.stats.states_explored);
    EXPECT_EQ(serial.stats.transitions, parallel.stats.transitions);
    EXPECT_EQ(serial.stats.max_depth, parallel.stats.max_depth);
    EXPECT_EQ(serial.dead_states, parallel.dead_states);
    EXPECT_EQ(serial.trace.size(), parallel.trace.size());
    EXPECT_FALSE(serial.redundant);
  }
}

TEST(Engine, SafetyQueriesAnswerTheSection52Dichotomy) {
  const JobSpec safe = spec_for(guardian::Authority::kSmallShifting,
                                Property::kNoIntegratedNodeFreezes);
  mc::TtpcStarModel safe_model(safe.model);
  EXPECT_EQ(mc::SerialEngine()
                .run(safe_model, make_engine_query(safe, safe_model),
                     nullptr, nullptr)
                .verdict,
            mc::Verdict::kHolds);

  JobSpec unsafe = spec_for(guardian::Authority::kFullShifting,
                            Property::kNoIntegratedNodeFreezes, 4);
  mc::TtpcStarModel unsafe_model(unsafe.model);
  const mc::EngineResult violated = mc::SerialEngine().run(
      unsafe_model, make_engine_query(unsafe, unsafe_model), nullptr,
      nullptr);
  EXPECT_EQ(violated.verdict, mc::Verdict::kViolated);
  EXPECT_FALSE(violated.trace.empty());
}

TEST(Engine, RedundantCompositionAgreesWithItsReference) {
  const JobSpec spec = spec_for(guardian::Authority::kPassive,
                                Property::kNoIntegratedNodeFreezes);
  mc::TtpcStarModel model(spec.model);
  const mc::EngineQuery query = make_engine_query(spec, model);

  const mc::EngineResult reference =
      mc::SerialEngine().run(model, query, nullptr, nullptr);
  const mc::RedundantEngine redundant(std::make_unique<mc::SerialEngine>(),
                                      std::make_unique<mc::ParallelEngine>(2));
  const mc::EngineResult merged =
      redundant.run(model, query, nullptr, nullptr);

  EXPECT_EQ(merged.verdict, reference.verdict);
  EXPECT_TRUE(merged.redundant);
  EXPECT_EQ(merged.stats.states_explored, reference.stats.states_explored);
  // Agreement implies the shadow explored the identical space.
  EXPECT_EQ(merged.secondary_stats.states_explored,
            reference.stats.states_explored);
  EXPECT_EQ(merged.secondary_stats.transitions,
            reference.stats.transitions);
}

TEST(Engine, RedundantHonorsASharedCancelToken) {
  const JobSpec spec = spec_for(guardian::Authority::kPassive,
                                Property::kNoIntegratedNodeFreezes, 4);
  mc::TtpcStarModel model(spec.model);
  const mc::EngineQuery query = make_engine_query(spec, model);

  util::CancelToken token;
  token.request_cancel();
  const mc::RedundantEngine redundant(std::make_unique<mc::SerialEngine>(),
                                      std::make_unique<mc::ParallelEngine>(2));
  const mc::EngineResult res = redundant.run(model, query, &token, nullptr);
  EXPECT_EQ(res.verdict, mc::Verdict::kInconclusive);
  EXPECT_TRUE(res.stats.cancelled);
}

TEST(EngineFactory, QueryKindsFollowTheProperty) {
  const ServiceConfig config;
  JobSpec spec = spec_for(guardian::Authority::kPassive,
                          Property::kNoIntegratedNodeFreezes);
  mc::TtpcStarModel model(spec.model);

  EXPECT_EQ(make_engine_query(spec, model).kind,
            mc::EngineQuery::Kind::kSafetyCheck);
  spec.property = Property::kAllActiveReachable;
  EXPECT_EQ(make_engine_query(spec, model).kind,
            mc::EngineQuery::Kind::kFindState);
  spec.property = Property::kRecoverability;
  EXPECT_EQ(make_engine_query(spec, model).kind,
            mc::EngineQuery::Kind::kRecoverability);
}

}  // namespace
}  // namespace tta::svc
