#include "ttpc/cstate.h"

#include <gtest/gtest.h>

namespace tta::ttpc {
namespace {

TEST(CState, AdvanceMovesTimeAndWrapsSlot) {
  ProtocolConfig cfg;  // 4 slots
  CState s(10, 3, 0);
  s.advance(cfg);
  EXPECT_EQ(s.global_time(), 11);
  EXPECT_EQ(s.round_slot(), 4);
  s.advance(cfg);
  EXPECT_EQ(s.round_slot(), 1);  // wraps at round boundary
  EXPECT_EQ(s.global_time(), 12);
}

TEST(CState, MembershipBitOperations) {
  CState s;
  EXPECT_FALSE(s.is_member(1));
  s.set_member(1, true);
  s.set_member(3, true);
  EXPECT_TRUE(s.is_member(1));
  EXPECT_FALSE(s.is_member(2));
  EXPECT_TRUE(s.is_member(3));
  EXPECT_EQ(s.member_count(), 2u);
  s.set_member(1, false);
  EXPECT_FALSE(s.is_member(1));
  EXPECT_EQ(s.member_count(), 1u);
}

TEST(CState, SetMemberIsIdempotent) {
  CState s;
  s.set_member(2, true);
  s.set_member(2, true);
  EXPECT_EQ(s.member_count(), 1u);
  s.set_member(2, false);
  s.set_member(2, false);
  EXPECT_EQ(s.member_count(), 0u);
}

TEST(CState, AgreementIsExactEquality) {
  // TTP/C frames are correct only when the whole C-state matches.
  CState a(5, 2, 0b0011);
  CState b(5, 2, 0b0011);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, CState(6, 2, 0b0011));
  EXPECT_NE(a, CState(5, 3, 0b0011));
  EXPECT_NE(a, CState(5, 2, 0b0111));
}

TEST(CState, ImageRoundTrip) {
  CState s(1234, 3, 0b1010);
  CState back = CState::from_image(s.to_image());
  EXPECT_EQ(s, back);
}

TEST(CState, ImageFieldMapping) {
  CState s(77, 2, 0b0110);
  wire::CStateImage img = s.to_image();
  EXPECT_EQ(img.global_time, 77);
  EXPECT_EQ(img.medl_position, 2);
  EXPECT_EQ(img.membership, 0b0110);
}

TEST(CState, ToStringContainsFields) {
  CState s(9, 1, 0x000F);
  std::string str = s.to_string();
  EXPECT_NE(str.find("t=9"), std::string::npos);
  EXPECT_NE(str.find("slot=1"), std::string::npos);
  EXPECT_NE(str.find("0x000f"), std::string::npos);
}

}  // namespace
}  // namespace tta::ttpc
