// Concurrency stress for the result stores (run under TTA_SANITIZE=thread
// via the `parallel` ctest label): many threads hammer the in-memory LRU
// and the persistent cache with mixed lookups and inserts while a
// dedicated writer compacts snapshots underneath them. The assertions are
// deliberately coarse — no lost entries, no decode failures, a clean
// recovery afterwards — because the real assertion is TSan finding no
// races.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "svc/metrics.h"
#include "svc/persistent_cache.h"
#include "svc/result_cache.h"

namespace tta::svc {
namespace {

std::string test_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = std::filesystem::path(testing::TempDir()) /
                              "tta_pstress" / info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

JobSpec spec_n(std::uint64_t n) {
  JobSpec spec;
  spec.model.authority = guardian::Authority::kPassive;
  spec.property = Property::kNoIntegratedNodeFreezes;
  spec.max_states = 100'000 + n;  // distinct budget => distinct digest
  return spec;
}

JobResult result_n(const JobSpec& spec, std::uint64_t n) {
  JobResult r;
  r.digest = spec.digest();
  r.property = spec.property;
  r.verdict = n % 2 == 0 ? mc::Verdict::kHolds : mc::Verdict::kViolated;
  r.stats.states_explored = n;
  r.stats.transitions = n * 7;
  r.stats.max_depth = n % 64;
  return r;
}

TEST(PersistentStress, ConcurrentInsertLookupWithCompactingWriter) {
  const std::string dir = test_dir();
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 64;

  Metrics metrics;
  std::atomic<std::uint64_t> decode_failures{0};
  std::atomic<bool> stop{false};
  {
    // Small compaction interval so automatic compactions also fire from
    // inserter threads, concurrently with the dedicated compactor.
    PersistentCache cache(PersistentCacheConfig{dir, /*compact_after=*/16},
                          &metrics);
    ResultCache lru(/*capacity=*/64);

    std::thread compactor([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        cache.compact();
        std::this_thread::yield();
      }
    });

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t n = t * kPerThread + i;
          const JobSpec spec = spec_n(n);
          const JobResult mine = result_n(spec, n);
          cache.insert(spec, mine);
          lru.insert(spec.digest(), mine);

          // Read back my own entry and a neighbor's (which may or may not
          // exist yet — a miss is fine, a mangled hit is not).
          JobResult out;
          if (!cache.lookup(spec, &out) ||
              out.stats.states_explored != n) {
            decode_failures.fetch_add(1, std::memory_order_relaxed);
          }
          const JobSpec other = spec_n((n * 31 + 7) % (kThreads * kPerThread));
          if (cache.lookup(other, &out) && out.digest != other.digest()) {
            decode_failures.fetch_add(1, std::memory_order_relaxed);
          }
          lru.lookup(other.digest(), &out);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    stop.store(true, std::memory_order_relaxed);
    compactor.join();

    EXPECT_EQ(decode_failures.load(), 0u);
    EXPECT_EQ(cache.size(), kThreads * kPerThread);
  }

  // Everything written under fire must be recoverable afterwards.
  Metrics recovery_metrics;
  PersistentCache reopened(PersistentCacheConfig{dir, 1024},
                           &recovery_metrics);
  EXPECT_EQ(reopened.size(), kThreads * kPerThread);
  EXPECT_EQ(recovery_metrics.persistent_corrupt_records.load(), 0u);
  EXPECT_EQ(recovery_metrics.persistent_truncated_records.load(), 0u);
  for (std::uint64_t n = 0; n < kThreads * kPerThread; n += 37) {
    JobResult out;
    ASSERT_TRUE(reopened.lookup(spec_n(n), &out)) << n;
    EXPECT_EQ(out.stats.states_explored, n);
  }
}

}  // namespace
}  // namespace tta::svc
