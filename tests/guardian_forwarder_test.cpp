// Bit-clock forwarder: the per-bit discrete simulation must agree with the
// analytic LeakyBucket and, including the le term, with eq. (1).
#include "guardian/forwarder.h"

#include <gtest/gtest.h>

#include "analysis/equations.h"
#include "guardian/leaky_bucket.h"

namespace tta::guardian {
namespace {

using util::Rational;

wire::LineCoding le4() { return wire::LineCoding(4); }

TEST(Forwarder, EqualClocksNeedOnlyPreamble) {
  BitstreamForwarder f(Rational(1), Rational(1), le4());
  EXPECT_LE(f.min_margin_bits(2076), 1);
  EXPECT_LE(f.min_buffer_bits(2076), 5);
}

TEST(Forwarder, FullMarginAlwaysSafe) {
  BitstreamForwarder f(Rational(1), Rational(3), le4());
  EXPECT_FALSE(f.forward(500, 500).underrun);
}

TEST(Forwarder, ZeroMarginUnderrunsWithFastGuardian) {
  BitstreamForwarder f(Rational(9), Rational(10), le4());
  EXPECT_TRUE(f.forward(2076, 0).underrun);
}

TEST(Forwarder, MonotoneInMargin) {
  BitstreamForwarder f(Rational(95), Rational(100), le4());
  std::int64_t need = f.min_margin_bits(1000);
  EXPECT_FALSE(f.forward(1000, need).underrun);
  EXPECT_FALSE(f.forward(1000, need + 7).underrun);
  if (need > 0) {
    EXPECT_TRUE(f.forward(1000, need - 1).underrun);
  }
}

TEST(Forwarder, PeakIncludesPreamble) {
  BitstreamForwarder f(Rational(1), Rational(1), le4());
  auto res = f.forward(100, 1);
  EXPECT_GE(res.peak_buffer_bits, 4);  // at least the absorbed preamble
}

TEST(Forwarder, SlowGuardianPeakGrowsWithSkew) {
  BitstreamForwarder mild(Rational(101), Rational(100), le4());
  BitstreamForwarder harsh(Rational(120), Rational(100), le4());
  auto p_mild = mild.forward(2000, mild.min_margin_bits(2000));
  auto p_harsh = harsh.forward(2000, harsh.min_margin_bits(2000));
  EXPECT_LT(p_mild.peak_buffer_bits, p_harsh.peak_buffer_bits);
}

struct Eq1Case {
  std::int64_t skew_ppm;
  std::int64_t frame_bits;
  unsigned le;
};

class ForwarderEq1 : public ::testing::TestWithParam<Eq1Case> {};

TEST_P(ForwarderEq1, MeasuredBufferBoundedByEquationOne) {
  // Eq. (1) predicts B_min = le + rho * f_max. The per-bit measurement is
  // never more than ~2 bits above that (store-and-forward quantization) and
  // never more than le bits below it: waiting out the le-bit preamble
  // already provides payload head start, which the paper's additive form
  // double-counts — i.e. eq. (1) is a safe, slightly conservative bound.
  const auto& p = GetParam();
  Rational node(1'000'000 - p.skew_ppm, 1'000'000);
  Rational hub(1'000'000 + p.skew_ppm, 1'000'000);
  BitstreamForwarder f(node, hub, wire::LineCoding(p.le));

  double rho = relative_rate_difference(node, hub).to_double();
  double predicted =
      analysis::min_buffer_bits(p.le, rho, static_cast<double>(p.frame_bits));
  auto measured = static_cast<double>(f.min_buffer_bits(p.frame_bits));
  EXPECT_GE(measured, predicted - static_cast<double>(p.le))
      << "skew=" << p.skew_ppm << " frame=" << p.frame_bits;
  EXPECT_LE(measured, predicted + 2.0)
      << "skew=" << p.skew_ppm << " frame=" << p.frame_bits;
}

TEST_P(ForwarderEq1, AgreesWithAnalyticLeakyBucket) {
  // Two independent implementations of the same physics. The forwarder's
  // start threshold (le + margin) over the wire image of le + f bits must
  // equal the analytic bucket's minimum head start over those same bits,
  // floored at le (the forwarder always absorbs the full preamble first).
  const auto& p = GetParam();
  Rational node(1'000'000 - p.skew_ppm, 1'000'000);
  Rational hub(1'000'000 + p.skew_ppm, 1'000'000);
  BitstreamForwarder f(node, hub, wire::LineCoding(p.le));
  LeakyBucket lb(node, hub);

  std::int64_t wire_bits = p.le + p.frame_bits;
  std::int64_t expected_threshold =
      std::max<std::int64_t>(p.le, lb.min_initial_bits(wire_bits));
  EXPECT_EQ(p.le + f.min_margin_bits(p.frame_bits), expected_threshold)
      << "skew=" << p.skew_ppm << " frame=" << p.frame_bits;
}

INSTANTIATE_TEST_SUITE_P(
    SkewFrameLe, ForwarderEq1,
    ::testing::Values(Eq1Case{100, 2076, 4}, Eq1Case{100, 28, 4},
                      Eq1Case{100, 115'000, 4}, Eq1Case{1'000, 2076, 4},
                      Eq1Case{10'000, 2076, 4}, Eq1Case{10'000, 76, 8},
                      Eq1Case{50'000, 1000, 4}, Eq1Case{100, 2076, 16},
                      Eq1Case{1'000, 115'000, 4}));

TEST(Forwarder, PaperWorkedExampleEq6) {
  // rho = 0.0002 and f = 115000 bits sits exactly at the feasibility edge
  // for f_min = 28: eq. (1) gives B_min = 4 + 0.0002 * 115000 = 27
  // = B_max = f_min - 1. The measured requirement must confirm the design
  // point is feasible (measurement <= the analytic bound, which is
  // conservative by up to le bits; see MeasuredBufferBoundedByEquationOne).
  Rational node(999'900, 1'000'000);
  Rational hub(1'000'100, 1'000'000);
  BitstreamForwarder f(node, hub, le4());
  std::int64_t measured = f.min_buffer_bits(115'000);
  EXPECT_GE(measured, 27 - 4);
  EXPECT_LE(measured, 27 + 2);
  EXPECT_LE(measured, analysis::max_buffer_bits(28));
}

}  // namespace
}  // namespace tta::guardian
