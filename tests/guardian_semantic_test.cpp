#include "guardian/semantic.h"

#include <gtest/gtest.h>

#include "ttpc/config.h"

namespace tta::guardian {
namespace {

using ttpc::ChannelFrame;
using ttpc::FrameKind;

ttpc::Medl medl() { return ttpc::Medl::uniform(ttpc::ProtocolConfig{}); }

TEST(SemanticAnalyzer, PassesHonestColdStart) {
  SemanticAnalyzer sa(medl(), 24);
  EXPECT_EQ(sa.check(2, ChannelFrame{FrameKind::kColdStart, 2}, std::nullopt),
            SemanticVerdict::kPass);
}

TEST(SemanticAnalyzer, BlocksColdStartClaimingForeignSlot) {
  SemanticAnalyzer sa(medl(), 24);
  for (ttpc::SlotNumber claimed : {1, 3, 4}) {
    EXPECT_EQ(sa.check(2, ChannelFrame{FrameKind::kColdStart, claimed},
                       std::nullopt),
              SemanticVerdict::kMasqueradeBlocked)
        << "claimed " << int(claimed);
  }
}

TEST(SemanticAnalyzer, ColdStartCheckWorksWithoutTimeBase) {
  // The port-vs-claim check needs no synchronization — that is exactly why
  // it can stop *startup* masquerading where time windows cannot.
  SemanticAnalyzer sa(medl(), 24);
  EXPECT_EQ(sa.check(1, ChannelFrame{FrameKind::kColdStart, 3}, std::nullopt),
            SemanticVerdict::kMasqueradeBlocked);
}

TEST(SemanticAnalyzer, BlocksCStateDisagreeingWithGuardianView) {
  SemanticAnalyzer sa(medl(), 24);
  EXPECT_EQ(sa.check(2, ChannelFrame{FrameKind::kCState, 3}, 2),
            SemanticVerdict::kBadCStateBlocked);
  EXPECT_EQ(sa.check(2, ChannelFrame{FrameKind::kCState, 2}, 2),
            SemanticVerdict::kPass);
}

TEST(SemanticAnalyzer, CStateUncheckableBeforeSync) {
  SemanticAnalyzer sa(medl(), 24);
  EXPECT_EQ(sa.check(2, ChannelFrame{FrameKind::kCState, 3}, std::nullopt),
            SemanticVerdict::kPass);
}

TEST(SemanticAnalyzer, SilenceAndNoiseHaveNoSemantics) {
  SemanticAnalyzer sa(medl(), 24);
  EXPECT_EQ(sa.check(1, ChannelFrame{}, 1), SemanticVerdict::kPass);
  EXPECT_EQ(sa.check(1, ChannelFrame{FrameKind::kBad, 0}, 1),
            SemanticVerdict::kPass);
}

TEST(SemanticAnalyzer, InsufficientBufferMakesFramesUncheckable) {
  // The link to Section 6: semantic analysis *requires* buffer bits. A
  // guardian whose buffer budget is below the inspection threshold cannot
  // check anything.
  SemanticAnalyzer sa(medl(), SemanticAnalyzer::kInspectionBits - 1);
  EXPECT_EQ(sa.check(1, ChannelFrame{FrameKind::kColdStart, 3}, std::nullopt),
            SemanticVerdict::kNotCheckable);
  EXPECT_EQ(sa.check(2, ChannelFrame{FrameKind::kCState, 3}, 2),
            SemanticVerdict::kNotCheckable);
}

TEST(SemanticAnalyzer, ExactInspectionBudgetSuffices) {
  SemanticAnalyzer sa(medl(), SemanticAnalyzer::kInspectionBits);
  EXPECT_EQ(sa.check(1, ChannelFrame{FrameKind::kColdStart, 3}, std::nullopt),
            SemanticVerdict::kMasqueradeBlocked);
}

TEST(SemanticAnalyzer, OtherFramesJudgedAgainstGuardianSlot) {
  SemanticAnalyzer sa(medl(), 24);
  EXPECT_EQ(sa.check(2, ChannelFrame{FrameKind::kOther, 2}, 2),
            SemanticVerdict::kPass);
  EXPECT_EQ(sa.check(2, ChannelFrame{FrameKind::kOther, 1}, 2),
            SemanticVerdict::kBadCStateBlocked);
}

}  // namespace
}  // namespace tta::guardian
