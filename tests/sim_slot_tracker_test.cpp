#include "sim/slot_tracker.h"

#include <gtest/gtest.h>

namespace tta::sim {
namespace {

using ttpc::ChannelFrame;
using ttpc::FrameKind;

ttpc::ProtocolConfig cfg() { return ttpc::ProtocolConfig{}; }

ChannelFrame cold(ttpc::SlotNumber id) { return {FrameKind::kColdStart, id}; }
ChannelFrame cstate(ttpc::SlotNumber id) { return {FrameKind::kCState, id}; }

TEST(SlotTracker, StartsUnsynced) {
  SlotTracker t(cfg());
  EXPECT_FALSE(t.current().has_value());
}

TEST(SlotTracker, SilenceKeepsItUnsynced) {
  SlotTracker t(cfg());
  for (int i = 0; i < 10; ++i) t.observe(ChannelFrame{}, ChannelFrame{});
  EXPECT_FALSE(t.current().has_value());
}

TEST(SlotTracker, PinsOnFirstIdentifiableFrame) {
  SlotTracker t(cfg());
  t.observe(cold(1), ChannelFrame{});
  ASSERT_TRUE(t.current().has_value());
  EXPECT_EQ(*t.current(), 2);  // the frame occupied slot 1
}

TEST(SlotTracker, PinsFromEitherChannel) {
  SlotTracker t(cfg());
  t.observe(ChannelFrame{}, cstate(3));
  EXPECT_EQ(*t.current(), 4);
}

TEST(SlotTracker, FreeRunsThroughSilence) {
  SlotTracker t(cfg());
  t.observe(cold(1), ChannelFrame{});
  t.observe(ChannelFrame{}, ChannelFrame{});  // slot 2 happens silently
  t.observe(ChannelFrame{}, ChannelFrame{});  // slot 3
  EXPECT_EQ(*t.current(), 4);
  t.observe(ChannelFrame{}, ChannelFrame{});  // slot 4, wraps
  EXPECT_EQ(*t.current(), 1);
}

TEST(SlotTracker, SingleBadIdDoesNotResync) {
  // One frame with a wrong slot id (e.g. a faulty node's bad C-state) must
  // not drag the guardian's window clock.
  SlotTracker t(cfg());
  t.observe(cold(1), ChannelFrame{});  // synced: next is 2
  t.observe(cstate(4), ChannelFrame{});  // liar: claims slot 4
  EXPECT_EQ(*t.current(), 3);  // free-ran instead of re-pinning
}

TEST(SlotTracker, ConsecutiveMismatchesResync) {
  SlotTracker t(cfg());
  t.observe(cold(1), ChannelFrame{});  // next = 2
  // A genuine restart at a different phase: consistent foreign ids.
  t.observe(cstate(4), ChannelFrame{});  // mismatch 1 -> free-run (3)
  t.observe(cstate(1), ChannelFrame{});  // mismatch 2 -> resync to next(1)=2
  EXPECT_EQ(*t.current(), 2);
}

TEST(SlotTracker, MatchingTrafficClearsMismatchCount) {
  SlotTracker t(cfg());
  t.observe(cold(1), ChannelFrame{});    // next = 2
  t.observe(cstate(4), ChannelFrame{});  // mismatch 1; free-run -> 3
  t.observe(cstate(3), ChannelFrame{});  // matches: counter resets, -> 4
  t.observe(cstate(1), ChannelFrame{});  // mismatch 1 again; free-run -> 1
  EXPECT_EQ(*t.current(), 1);
}

TEST(SlotTracker, IgnoresNonProtocolFrames) {
  // kOther traffic (e.g. a babbling idiot) cannot pin the tracker.
  SlotTracker t(cfg());
  t.observe(ChannelFrame{FrameKind::kOther, 2}, ChannelFrame{});
  EXPECT_FALSE(t.current().has_value());
  t.observe(cold(1), ChannelFrame{});
  // ... and cannot resync it either.
  t.observe(ChannelFrame{FrameKind::kOther, 4}, ChannelFrame{});
  t.observe(ChannelFrame{FrameKind::kOther, 4}, ChannelFrame{});
  EXPECT_EQ(*t.current(), 4);  // pure free-run from the pin
}

TEST(SlotTracker, NoiseNeitherPinsNorAdvancesPhase) {
  SlotTracker t(cfg());
  t.observe(ChannelFrame{FrameKind::kBad, 0}, ChannelFrame{});
  EXPECT_FALSE(t.current().has_value());
}

TEST(SlotTracker, ResetForgetsEverything) {
  SlotTracker t(cfg());
  t.observe(cold(1), ChannelFrame{});
  t.reset();
  EXPECT_FALSE(t.current().has_value());
}

}  // namespace
}  // namespace tta::sim
