// The bounded MPSC queue under svc::ResultStream: capacity enforcement,
// blocking and deadline pops, close semantics (producers fail fast, the
// consumer drains the buffer before end-of-stream), and a many-producer
// hammering round. Labeled `parallel` for the TSan build.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "util/bounded_mpsc.h"

namespace tta::util {
namespace {

TEST(BoundedMpsc, FifoWithinCapacity) {
  BoundedMpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_EQ(q.try_pop(), 2);
  EXPECT_EQ(q.try_pop(), 3);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedMpsc, TryPushFailsWhenFull) {
  BoundedMpscQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_TRUE(q.try_push(3));  // a pop frees a slot
}

TEST(BoundedMpscDeathTest, ZeroCapacityIsARejectedPrecondition) {
  // Capacity 0 used to be silently rewritten to 1, which masked caller
  // bugs (a "bounded" queue nobody sized). It is now a hard precondition.
  EXPECT_DEATH(BoundedMpscQueue<int>(0), "capacity");
}

TEST(BoundedMpsc, BlockingPushWaitsForSpace) {
  BoundedMpscQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread producer([&] { EXPECT_TRUE(q.push(2)); });
  // The producer is (very likely) blocked on the full queue now; one pop
  // unblocks it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedMpsc, PopForDistinguishesTimeoutItemAndEnd) {
  BoundedMpscQueue<int> q(2);
  int out = 0;

  // Empty + open: an unambiguous timeout, decided under the queue lock.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(30), &out),
            PopStatus::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));

  // Buffered item: delivered even after close (drain-before-end).
  ASSERT_TRUE(q.try_push(7));
  q.close();
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(0), &out), PopStatus::kItem);
  EXPECT_EQ(out, 7);

  // Empty + closed: end-of-stream, never a timeout.
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(0), &out), PopStatus::kEnded);
  EXPECT_TRUE(q.exhausted());
}

TEST(BoundedMpsc, PushOverflowNeverDropsAndReportsTheBreach) {
  BoundedMpscQueue<int> q(2);
  EXPECT_EQ(q.push_overflow(1), PushStatus::kOk);
  EXPECT_EQ(q.push_overflow(2), PushStatus::kOk);
  // The queue is at capacity: the push still lands (no silent drop) but
  // the breach is reported so callers can count it.
  EXPECT_EQ(q.push_overflow(3), PushStatus::kOverflow);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_EQ(q.try_pop(), 2);
  EXPECT_EQ(q.try_pop(), 3);

  q.close();
  EXPECT_EQ(q.push_overflow(4), PushStatus::kClosed);  // the only lossy path
  EXPECT_TRUE(q.exhausted());
}

TEST(BoundedMpsc, CloseDrainsBufferThenReportsEndOfStream) {
  BoundedMpscQueue<int> q(4);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.exhausted());  // still buffered
  EXPECT_FALSE(q.try_push(3));  // producers fail fast after close
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());  // end-of-stream, no block
  EXPECT_TRUE(q.exhausted());
}

TEST(BoundedMpsc, CloseWakesABlockedConsumer) {
  BoundedMpscQueue<int> q(2);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BoundedMpsc, CloseWakesABlockedProducer) {
  BoundedMpscQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
}

TEST(BoundedMpsc, ManyProducersDeliverEveryItemExactlyOnce) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 250;
  BoundedMpscQueue<int> q(16);  // smaller than the item count: forces waits

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }

  std::set<int> seen;
  for (int n = 0; n < kProducers * kPerProducer; ++n) {
    std::optional<int> item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_TRUE(seen.insert(*item).second) << "duplicate " << *item;
  }
  for (std::thread& t : producers) t.join();
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace tta::util
