#include "ttpc/clocksync.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tta::ttpc {
namespace {

// --------------------------------------------------------- fta_correction --

TEST(FtaCorrection, AveragesInterior) {
  EXPECT_DOUBLE_EQ(fta_correction({1.0, 2.0, 3.0, 4.0}, 1), 2.5);
  EXPECT_DOUBLE_EQ(fta_correction({-10.0, 0.0, 0.0, 10.0}, 1), 0.0);
}

TEST(FtaCorrection, DiscardsExtremesNotValues) {
  // A single insane measurement cannot steer the correction beyond the
  // range of the honest ones.
  double c = fta_correction({0.0, 0.1, -0.1, 1e9}, 1);
  EXPECT_LE(std::abs(c), 0.1);
}

TEST(FtaCorrection, SymmetricAttackIsCancelled) {
  double c = fta_correction({-1e9, -0.1, 0.1, 1e9}, 1);
  EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(FtaCorrection, TooFewMeasurementsYieldZero) {
  EXPECT_DOUBLE_EQ(fta_correction({}, 1), 0.0);
  EXPECT_DOUBLE_EQ(fta_correction({5.0}, 1), 0.0);
  EXPECT_DOUBLE_EQ(fta_correction({5.0, 6.0}, 1), 0.0);
  EXPECT_DOUBLE_EQ(fta_correction({1.0, 2.0, 3.0, 4.0}, 2), 0.0);
}

TEST(FtaCorrection, KZeroIsPlainAverage) {
  EXPECT_DOUBLE_EQ(fta_correction({1.0, 2.0, 3.0}, 0), 2.0);
}

TEST(FtaCorrection, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(fta_correction({4.0, 1.0, 3.0, 2.0}, 1), 2.5);
}

// ----------------------------------------------------------- simulation ---

SyncConfig healthy_ensemble(std::size_t n, double drift_spread_ppm) {
  SyncConfig cfg;
  for (std::size_t i = 0; i < n; ++i) {
    ClockModel c;
    // Spread drifts evenly in [-spread/2, +spread/2].
    c.drift_ppm = drift_spread_ppm *
                  (static_cast<double>(i) / static_cast<double>(n - 1) - 0.5);
    c.jitter = 1e-7;
    cfg.clocks.push_back(c);
  }
  return cfg;
}

TEST(ClockSync, PerfectClocksStaySynchronized) {
  SyncConfig cfg;
  cfg.clocks.assign(4, ClockModel{});  // no drift, no jitter
  ClockSyncSimulation sim(cfg);
  auto samples = sim.run(50);
  EXPECT_LT(samples.back().precision, 1e-12);
  EXPECT_LT(samples.back().accuracy, 1e-12);
}

TEST(ClockSync, DriftingClocksConvergeToBoundedPrecision) {
  SyncConfig cfg = healthy_ensemble(4, 200.0);  // +-100 ppm, paper's crystals
  ClockSyncSimulation sim(cfg);
  auto samples = sim.run(100);
  double bound = sim.precision_bound();
  // After convergence every round's precision respects the bound.
  for (std::size_t r = 50; r < samples.size(); ++r) {
    EXPECT_LE(samples[r].precision, bound) << "round " << r;
  }
  // And it is genuinely synchronized: far tighter than free-running drift
  // over 100 rounds would be (100 * 200 ppm = 2% of a round).
  EXPECT_LT(samples.back().precision, 1e-3);
}

TEST(ClockSync, WithoutSyncDriftAccumulates) {
  // Control experiment: same drifts, but gain so small the correction is
  // negligible -> offsets diverge linearly with rounds.
  SyncConfig cfg = healthy_ensemble(4, 200.0);
  cfg.sync_gain = 1e-9;
  ClockSyncSimulation sim(cfg);
  auto samples = sim.run(100);
  EXPECT_GT(samples.back().precision, 1e-3);  // ~ 100 rounds * 200 ppm * 1s
}

TEST(ClockSync, PrecisionScalesWithDriftSpread) {
  auto steady_precision = [](double spread_ppm) {
    ClockSyncSimulation sim(healthy_ensemble(4, spread_ppm));
    auto samples = sim.run(200);
    double worst = 0.0;
    for (std::size_t r = 100; r < samples.size(); ++r) {
      worst = std::max(worst, samples[r].precision);
    }
    return worst;
  };
  EXPECT_LT(steady_precision(20.0), steady_precision(2000.0));
}

TEST(ClockSync, OneByzantineClockAmongFourIsTolerated) {
  SyncConfig cfg = healthy_ensemble(4, 200.0);
  cfg.clocks[1].faulty = true;
  cfg.clocks[1].jitter = 0.5;  // apparent send times are garbage
  ClockSyncSimulation sim(cfg);
  auto samples = sim.run(200);
  // Healthy clocks stay within the healthy-ensemble bound — the FTA
  // discards the faulty extreme every round — and keep tracking real time.
  double bound = sim.precision_bound();
  for (std::size_t r = 100; r < samples.size(); ++r) {
    EXPECT_LE(samples[r].precision, bound) << "round " << r;
    EXPECT_LE(samples[r].accuracy, 0.05) << "round " << r;
  }
}

TEST(ClockSync, TwoByzantineClocksAmongFourBreakSynchronization) {
  // 2k < n fails with k = 1 discards and two liars: the healthy nodes'
  // corrections are now steered by garbage. With full gain they all jump to
  // the corrupted average — mutual precision can *look* fine — but the
  // ensemble no longer tracks real time: accuracy random-walks away. This
  // is the Byzantine resilience boundary, and why TTP/C's fault hypothesis
  // allows exactly one faulty component.
  SyncConfig cfg = healthy_ensemble(4, 200.0);
  cfg.clocks[1].faulty = true;
  cfg.clocks[1].jitter = 0.5;
  cfg.clocks[2].faulty = true;
  cfg.clocks[2].jitter = 0.5;
  ClockSyncSimulation sim(cfg);
  auto samples = sim.run(200);
  double worst_accuracy = 0.0;
  for (std::size_t r = 100; r < samples.size(); ++r) {
    worst_accuracy = std::max(worst_accuracy, samples[r].accuracy);
  }
  EXPECT_GT(worst_accuracy, 0.2);
}

TEST(ClockSync, DeterministicForSameSeed) {
  SyncConfig cfg = healthy_ensemble(4, 200.0);
  cfg.clocks[0].jitter = 1e-5;
  ClockSyncSimulation a(cfg), b(cfg);
  a.run(50);
  b.run(50);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(a.offset(i), b.offset(i));
  }
}

TEST(ClockSync, LargerEnsemblesSynchronizeToo) {
  ClockSyncSimulation sim(healthy_ensemble(8, 200.0));
  auto samples = sim.run(150);
  EXPECT_LE(samples.back().precision, sim.precision_bound());
}

}  // namespace
}  // namespace tta::ttpc
